//! The daemon: a fixed worker pool behind a bounded admission queue.
//!
//! The accept loop never parses HTTP. It hands each connection to a
//! `sync_channel` of capacity [`ServeConfig::queue`]; when the channel
//! is full the connection is shed immediately with `503` +
//! `Retry-After` — *before* reading the request, so overload costs the
//! daemon one `write` and no parsing work. Workers pull connections,
//! parse one request each (`Connection: close`), route it and answer.
//!
//! Shutdown is cooperative: `POST /shutdown` sets a flag and dials the
//! daemon's own listener once to wake the accept loop, which then
//! drains — the channel closes, workers finish their current request
//! and exit, and [`Server::run`] returns.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use speculative_prefetch::wire::{esc, list, render_access};
use speculative_prefetch::{
    backend_specs, build_plan_store, parse_workload, plan_store_specs, policy_specs,
    predictor_specs, render_report_fields, AccessStats, Engine, Error, PlanStore, WireRun,
    Workload,
};

use crate::http::{self, Request, Response};

/// How long a worker waits on a silent client before giving the
/// connection up.
const CLIENT_TIMEOUT: Duration = Duration::from_secs(10);

/// The `Retry-After` hint attached to load-shedding `503`s.
const RETRY_AFTER_SECS: u32 = 1;

/// Daemon sizing knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads executing requests.
    pub workers: usize,
    /// Admission-queue capacity; connections beyond it are shed with
    /// `503`.
    pub queue: usize,
    /// Largest accepted request body, in bytes.
    pub max_body: usize,
    /// Plan-store spec shared by every worker (see
    /// `speculative_prefetch::build_plan_store`). The second client to
    /// post an identical population run is served from this store.
    pub plan_store: String,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            queue: 32,
            max_body: 1024 * 1024,
            plan_store: "memory:8x1024".to_string(),
        }
    }
}

/// Shared daemon state: counters the accept loop and workers update and
/// `GET /stats` reports, plus the plan store every worker runs against.
pub struct ServerState {
    addr: SocketAddr,
    served: AtomicU64,
    shed: AtomicU64,
    in_flight: AtomicU64,
    shutdown: AtomicBool,
    run_latencies_ms: Mutex<Vec<f64>>,
    store: Arc<dyn PlanStore>,
}

impl std::fmt::Debug for ServerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Hand-rolled: `dyn PlanStore` has no Debug bound; its spec
        // string is the useful identity anyway.
        f.debug_struct("ServerState")
            .field("addr", &self.addr)
            .field("served", &self.served)
            .field("shed", &self.shed)
            .field("in_flight", &self.in_flight)
            .field("plan_store", &self.store.spec_string())
            .finish_non_exhaustive()
    }
}

impl ServerState {
    /// The plan store shared by every worker.
    pub fn plan_store(&self) -> &Arc<dyn PlanStore> {
        &self.store
    }

    /// Requests answered by a worker (any status).
    pub fn served(&self) -> u64 {
        self.served.load(Ordering::SeqCst)
    }

    /// Connections shed with `503` by the accept loop.
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::SeqCst)
    }

    /// Connections currently held by workers.
    pub fn in_flight(&self) -> u64 {
        self.in_flight.load(Ordering::SeqCst)
    }

    fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the accept loop: it only re-checks the flag after an
        // accept, so dial our own listener once.
        let _ = TcpStream::connect(self.addr);
    }
}

/// A bound-but-not-yet-running daemon.
pub struct Server {
    listener: TcpListener,
    cfg: ServeConfig,
    state: Arc<ServerState>,
}

impl Server {
    /// Binds the listener (use port `0` for an ephemeral port).
    pub fn bind(addr: &str, cfg: ServeConfig) -> std::io::Result<Server> {
        let store = build_plan_store(&cfg.plan_store)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e.to_string()))?;
        let listener = TcpListener::bind(addr)?;
        let state = Arc::new(ServerState {
            addr: listener.local_addr()?,
            served: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            run_latencies_ms: Mutex::new(Vec::new()),
            store,
        });
        Ok(Server {
            listener,
            cfg,
            state,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// The shared counter state.
    pub fn state(&self) -> Arc<ServerState> {
        Arc::clone(&self.state)
    }

    /// Serves until `POST /shutdown`. Blocks the calling thread.
    pub fn run(self) -> std::io::Result<()> {
        let Server {
            listener,
            cfg,
            state,
        } = self;
        let workers = cfg.workers.max(1);
        let (tx, rx) = mpsc::sync_channel::<TcpStream>(cfg.queue.max(1));
        let rx = Arc::new(Mutex::new(rx));

        let mut pool = Vec::with_capacity(workers);
        for i in 0..workers {
            let rx = Arc::clone(&rx);
            let state = Arc::clone(&state);
            let cfg = cfg.clone();
            pool.push(
                std::thread::Builder::new()
                    .name(format!("skp-serve-worker-{i}"))
                    .spawn(move || loop {
                        let next = rx.lock().expect("queue lock").recv();
                        let Ok(stream) = next else { break };
                        state.in_flight.fetch_add(1, Ordering::SeqCst);
                        handle_connection(stream, &state, &cfg);
                        state.in_flight.fetch_sub(1, Ordering::SeqCst);
                    })?,
            );
        }

        for stream in listener.incoming() {
            if state.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            match tx.try_send(stream) {
                Ok(()) => {}
                Err(mpsc::TrySendError::Full(mut stream)) => {
                    state.shed.fetch_add(1, Ordering::SeqCst);
                    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
                    let _ = Response::error(
                        503,
                        "queue-full",
                        &format!(
                            "admission queue is full ({} slots); retry shortly",
                            cfg.queue.max(1)
                        ),
                    )
                    .with_retry_after(RETRY_AFTER_SECS)
                    .write(&mut stream);
                }
                Err(mpsc::TrySendError::Disconnected(_)) => break,
            }
        }
        drop(tx);
        for worker in pool {
            let _ = worker.join();
        }
        Ok(())
    }

    /// Runs the daemon on a background thread; the handle shuts it down.
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let addr = self.local_addr();
        let state = self.state();
        let thread = std::thread::Builder::new()
            .name("skp-serve-acceptor".to_string())
            .spawn(move || self.run())?;
        Ok(ServerHandle {
            addr,
            state,
            thread,
        })
    }
}

/// Handle to a daemon running on a background thread (tests, CI).
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServerState>,
    thread: std::thread::JoinHandle<std::io::Result<()>>,
}

impl ServerHandle {
    /// The daemon's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared counter state.
    pub fn state(&self) -> &ServerState {
        &self.state
    }

    /// Requests shutdown and joins the server thread.
    pub fn shutdown(self) -> std::io::Result<()> {
        // Ask politely over HTTP first so the round-trip is exercised;
        // the direct flag + wake below covers a daemon whose workers
        // are all wedged on silent clients.
        let _ = speculative_prefetch::http_request(
            &self.addr.to_string(),
            "POST",
            "/shutdown",
            Some("{}"),
        );
        self.state.request_shutdown();
        self.thread
            .join()
            .map_err(|_| std::io::Error::other("server thread panicked"))?
    }
}

// ---------------------------------------------------------------------
// Per-connection handling and routing.
// ---------------------------------------------------------------------

fn handle_connection(mut stream: TcpStream, state: &Arc<ServerState>, cfg: &ServeConfig) {
    let _ = stream.set_read_timeout(Some(CLIENT_TIMEOUT));
    let _ = stream.set_write_timeout(Some(CLIENT_TIMEOUT));
    let started = Instant::now();
    let response = match http::read_request(&mut stream, cfg.max_body) {
        Ok(req) => {
            let response = route(&req, state, cfg);
            if req.method == "POST" && req.path == "/run" {
                let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
                state
                    .run_latencies_ms
                    .lock()
                    .expect("latency lock")
                    .push(elapsed_ms);
            }
            Some(response)
        }
        Err(e) => e.into_response(),
    };
    if let Some(response) = response {
        let _ = response.write(&mut stream);
        state.served.fetch_add(1, Ordering::SeqCst);
    }
}

fn route(req: &Request, state: &Arc<ServerState>, cfg: &ServeConfig) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/version") => Response::json(format!(
            "{{\"name\":\"skp-serve\",\"version\":\"{}\",\"workers\":{},\"queue\":{}}}",
            env!("CARGO_PKG_VERSION"),
            cfg.workers.max(1),
            cfg.queue.max(1)
        )),
        ("GET", "/registry") => Response::json(registry_json()),
        ("GET", "/stats") => Response::json(stats_json(state)),
        ("POST", "/run") => handle_run(&req.body, &state.store),
        ("POST", "/shutdown") => {
            state.request_shutdown();
            Response::json("{\"shutting_down\":true}".to_string())
        }
        (method, path @ ("/version" | "/registry" | "/stats" | "/run" | "/shutdown")) => {
            Response::error(
                405,
                "method-not-allowed",
                &format!(
                    "{method} is not allowed on {path} \
                     (GET /version|/registry|/stats, POST /run|/shutdown)"
                ),
            )
        }
        (_, path) => Response::error(404, "not-found", &format!("no route for '{path}'")),
    }
}

fn registry_json() -> String {
    let opt = |p: Option<&'static str>| match p {
        Some(p) => format!("\"{}\"", esc(p)),
        None => "null".to_string(),
    };
    let policies = list(policy_specs(), |s| {
        format!(
            "{{\"name\":\"{}\",\"aliases\":{},\"summary\":\"{}\",\"param\":{}}}",
            esc(s.name),
            list(s.aliases, |a| format!("\"{}\"", esc(a))),
            esc(s.summary),
            opt(s.param)
        )
    });
    let predictors = list(predictor_specs(), |s| {
        format!(
            "{{\"name\":\"{}\",\"summary\":\"{}\",\"param\":{}}}",
            esc(s.name),
            esc(s.summary),
            opt(s.param)
        )
    });
    let backends = list(&backend_specs(), |s| {
        format!(
            "{{\"name\":\"{}\",\"params\":\"{}\",\"summary\":\"{}\"}}",
            esc(s.name),
            esc(s.params),
            esc(s.summary)
        )
    });
    let plan_stores = list(&plan_store_specs(), |s| {
        format!(
            "{{\"name\":\"{}\",\"params\":\"{}\",\"summary\":\"{}\"}}",
            esc(s.name),
            esc(s.params),
            esc(s.summary)
        )
    });
    format!(
        "{{\"policies\":{policies},\"predictors\":{predictors},\
         \"backends\":{backends},\"plan_stores\":{plan_stores}}}"
    )
}

fn stats_json(state: &ServerState) -> String {
    let mut samples = state.run_latencies_ms.lock().expect("latency lock").clone();
    let access = AccessStats::from_samples(&mut samples);
    let ps = state.store.stats();
    let tiers = list(&ps.tiers, |t| {
        format!(
            "{{\"tier\":\"{}\",\"hits\":{},\"misses\":{},\"evictions\":{},\
             \"promotions\":{},\"entries\":{}}}",
            esc(&t.tier),
            t.hits,
            t.misses,
            t.evictions,
            t.promotions,
            t.entries
        )
    });
    format!(
        "{{\"served\":{},\"shed\":{},\"in_flight\":{},\"run_latency_ms\":{},\
         \"plan_store\":{{\"spec\":\"{}\",\"lookups\":{},\"hits\":{},\"misses\":{},\
         \"tiers\":{tiers}}}}}",
        state.served(),
        state.shed(),
        state.in_flight(),
        render_access(&access),
        esc(&state.store.spec_string()),
        ps.lookups,
        ps.hits,
        ps.misses(),
    )
}

// ---------------------------------------------------------------------
// POST /run: execute a wire run or a .skp workload file.
// ---------------------------------------------------------------------

fn handle_run(body: &str, store: &Arc<dyn PlanStore>) -> Response {
    let trimmed = body.trim_start();
    if trimmed.is_empty() {
        return Response::error(
            400,
            "empty-body",
            "POST /run needs a .skp workload file or a wire-run JSON object as its body",
        );
    }
    let outcome = if trimmed.starts_with('{') {
        run_wire(body, store)
    } else {
        run_workload_file(body, store)
    };
    match outcome {
        Ok(body) => Response::json(body),
        Err(e) => Response::error(status_for(&e), error_kind(&e), &e.to_string()),
    }
}

fn run_wire(body: &str, store: &Arc<dyn PlanStore>) -> Result<String, Error> {
    let wire_run = WireRun::parse(body)?;
    if wire_run.backend.starts_with("served") {
        return Err(Error::InvalidParam {
            what: "wire run",
            detail: "the daemon does not chain to other daemons; \
                     post the inner backend spec directly"
                .to_string(),
        });
    }
    let (mut engine, workload) = wire_run.instantiate_with_store(Arc::clone(store))?;
    let report = engine.run(&workload)?;
    Ok(report_json(&wire_run.kind, &engine, &report, &[]))
}

fn run_workload_file(body: &str, store: &Arc<dyn PlanStore>) -> Result<String, Error> {
    let file = parse_workload(body)?;
    // A `plan-store` directive in the posted file still wins; files
    // without one share the daemon's store across clients.
    let mut engine = file.build_engine_with_store(Some(Arc::clone(store)))?;
    let workload: Workload = file.workload()?;
    let report = engine.run(&workload)?;
    Ok(report_json(
        file.kind.name(),
        &engine,
        &report,
        &file.labels,
    ))
}

fn report_json(
    workload: &str,
    engine: &Engine,
    report: &speculative_prefetch::RunReport,
    labels: &[String],
) -> String {
    // The exact shape `skp-plan run --format json` prints, so a served
    // round-trip and a local run are diffable line for line.
    format!(
        "{{\"workload\":\"{}\",\"backend\":\"{}\",\"policy\":\"{}\",{}}}",
        esc(workload),
        esc(&engine.backend_spec_string()),
        esc(engine.policy_name()),
        render_report_fields(report, labels)
    )
}

fn error_kind(e: &Error) -> &'static str {
    match e {
        Error::Model(_) => "model",
        Error::Parse(_) => "parse",
        Error::UnknownPolicy { .. } => "unknown-policy",
        Error::UnknownPredictor { .. } => "unknown-predictor",
        Error::UnknownBackend { .. } => "unknown-backend",
        Error::InvalidParam { .. } => "invalid-param",
        Error::MissingComponent { .. } => "missing-component",
        Error::UnsupportedBackend { .. } => "unsupported-backend",
        Error::Mismatch { .. } => "mismatch",
        Error::Served { .. } => "served",
        Error::Io(_) => "io",
    }
}

fn status_for(e: &Error) -> u16 {
    match e {
        // A verification mismatch or I/O failure is the daemon's
        // problem; everything else is a bad request.
        Error::Mismatch { .. } | Error::Io(_) => 500,
        _ => 400,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_store() -> Arc<dyn PlanStore> {
        build_plan_store("memory:1x8").expect("valid spec")
    }

    #[test]
    fn registry_json_lists_all_four_registries() {
        let j = registry_json();
        assert!(j.contains("\"policies\":["));
        assert!(j.contains("\"predictors\":["));
        assert!(j.contains("\"backends\":["));
        assert!(j.contains("\"plan_stores\":["));
        assert!(j.contains("skp-exact"));
        assert!(j.contains("\"served\""));
        assert!(j.contains("\"tiered\""));
        // It is valid JSON by the wire module's own parser.
        speculative_prefetch::wire::Json::parse(&j).expect("registry JSON parses");
    }

    #[test]
    fn run_rejects_daemon_chaining() {
        let run = WireRun {
            kind: "sharded".to_string(),
            backend: "served:127.0.0.1:7077:parallel".to_string(),
            policy: "skp-exact".to_string(),
            requests_per_client: 1,
            seed: 1,
            traced: false,
            retrievals: vec![1.0, 2.0],
            viewing: vec![1.0, 1.0],
            rows: vec![vec![(1, 1.0)], vec![(0, 1.0)]],
        };
        let err = run_wire(&run.render(), &test_store())
            .unwrap_err()
            .to_string();
        assert!(err.contains("chain"), "{err}");
    }

    #[test]
    fn empty_and_invalid_bodies_map_to_400() {
        let store = test_store();
        assert_eq!(handle_run("", &store).status, 400);
        let resp = handle_run("not a workload file", &store);
        assert_eq!(resp.status, 400);
        assert!(
            resp.body.starts_with("{\"error\":{\"kind\":\"parse\""),
            "{}",
            resp.body
        );
        let resp = handle_run("{\"kind\":\"sharded\"}", &store);
        assert_eq!(resp.status, 400);
        assert!(resp.body.contains("invalid-param"), "{}", resp.body);
    }

    #[test]
    fn bad_plan_store_spec_fails_bind() {
        let cfg = ServeConfig {
            plan_store: "hot:0".to_string(),
            ..ServeConfig::default()
        };
        let err = match Server::bind("127.0.0.1:0", cfg) {
            Err(e) => e,
            Ok(_) => panic!("a malformed plan-store spec must fail bind"),
        };
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
        assert!(err.to_string().contains("cap"), "{err}");
    }
}
