//! The daemon: a fixed worker pool behind a bounded admission queue.
//!
//! The accept loop never parses HTTP. It hands each connection to a
//! `sync_channel` of capacity [`ServeConfig::queue`]; when the channel
//! is full the connection is shed immediately with `503` +
//! `Retry-After` — *before* reading the request, so overload costs the
//! daemon one `write` and no parsing work. Workers pull connections,
//! parse one request each (`Connection: close`), route it and answer.
//!
//! Shutdown is cooperative: `POST /shutdown` sets a flag and dials the
//! daemon's own listener once to wake the accept loop, which then
//! drains — the channel closes, workers finish their current request
//! and exit, and [`Server::run`] returns.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use speculative_prefetch::wire::{esc, list, render_access};
use speculative_prefetch::{
    backend_specs, build_plan_store, obs_sink_specs, parse_workload, plan_store_specs,
    policy_specs, predictor_specs, render_report_fields, AccessStats, Engine, Error, PlanStore,
    PlanStoreStats, WireRun, Workload,
};

use crate::http::{self, Request, Response};

/// How long a worker waits on a silent client before giving the
/// connection up.
const CLIENT_TIMEOUT: Duration = Duration::from_secs(10);

/// The `Retry-After` hint attached to load-shedding `503`s.
const RETRY_AFTER_SECS: u32 = 1;

/// Daemon sizing knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads executing requests.
    pub workers: usize,
    /// Admission-queue capacity; connections beyond it are shed with
    /// `503`.
    pub queue: usize,
    /// Largest accepted request body, in bytes.
    pub max_body: usize,
    /// Plan-store spec shared by every worker (see
    /// `speculative_prefetch::build_plan_store`). The second client to
    /// post an identical population run is served from this store.
    pub plan_store: String,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            queue: 32,
            max_body: 1024 * 1024,
            plan_store: "memory:8x1024".to_string(),
        }
    }
}

/// Per-route request counters over the daemon's fixed route set.
/// Requests to unknown paths fold into `other`, so the counters sum to
/// every routed request.
#[derive(Debug, Default)]
struct RouteCounters {
    version: AtomicU64,
    registry: AtomicU64,
    stats: AtomicU64,
    metrics: AtomicU64,
    run: AtomicU64,
    shutdown: AtomicU64,
    other: AtomicU64,
}

impl RouteCounters {
    /// Counts a routed request against its path (any method — a `405`
    /// is still traffic on that route).
    fn hit(&self, path: &str) {
        let counter = match path {
            "/version" => &self.version,
            "/registry" => &self.registry,
            "/stats" => &self.stats,
            "/metrics" => &self.metrics,
            "/run" => &self.run,
            "/shutdown" => &self.shutdown,
            _ => &self.other,
        };
        counter.fetch_add(1, Ordering::SeqCst);
    }

    fn snapshot(&self) -> Vec<(&'static str, u64)> {
        [
            ("/version", &self.version),
            ("/registry", &self.registry),
            ("/stats", &self.stats),
            ("/metrics", &self.metrics),
            ("/run", &self.run),
            ("/shutdown", &self.shutdown),
            ("other", &self.other),
        ]
        .into_iter()
        .map(|(name, c)| (name, c.load(Ordering::SeqCst)))
        .collect()
    }
}

/// Shared daemon state: counters the accept loop and workers update and
/// `GET /stats` / `GET /metrics` report, plus the plan store every
/// worker runs against.
pub struct ServerState {
    addr: SocketAddr,
    started: Instant,
    served: AtomicU64,
    shed: AtomicU64,
    in_flight: AtomicU64,
    queued: AtomicU64,
    routes: RouteCounters,
    shutdown: AtomicBool,
    run_latencies_ms: Mutex<Vec<f64>>,
    store: Arc<dyn PlanStore>,
}

/// One consistent view of the daemon's counters, taken once per
/// `GET /stats` or `GET /metrics` answer. Both endpoints render from
/// this struct, so they cannot drift apart on what they report.
struct StatsSnapshot {
    uptime_secs: f64,
    served: u64,
    shed: u64,
    in_flight: u64,
    queue_depth: u64,
    routes: Vec<(&'static str, u64)>,
    latencies_ms: Vec<f64>,
    store_spec: String,
    store: PlanStoreStats,
}

impl std::fmt::Debug for ServerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Hand-rolled: `dyn PlanStore` has no Debug bound; its spec
        // string is the useful identity anyway.
        f.debug_struct("ServerState")
            .field("addr", &self.addr)
            .field("served", &self.served)
            .field("shed", &self.shed)
            .field("in_flight", &self.in_flight)
            .field("plan_store", &self.store.spec_string())
            .finish_non_exhaustive()
    }
}

impl ServerState {
    /// The plan store shared by every worker.
    pub fn plan_store(&self) -> &Arc<dyn PlanStore> {
        &self.store
    }

    /// Requests answered by a worker (any status).
    pub fn served(&self) -> u64 {
        self.served.load(Ordering::SeqCst)
    }

    /// Connections shed with `503` by the accept loop.
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::SeqCst)
    }

    /// Connections currently held by workers.
    pub fn in_flight(&self) -> u64 {
        self.in_flight.load(Ordering::SeqCst)
    }

    /// Connections admitted but not yet picked up by a worker.
    pub fn queue_depth(&self) -> u64 {
        self.queued.load(Ordering::SeqCst)
    }

    /// Seconds since the daemon bound its listener.
    pub fn uptime_secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            uptime_secs: self.uptime_secs(),
            served: self.served(),
            shed: self.shed(),
            in_flight: self.in_flight(),
            queue_depth: self.queue_depth(),
            routes: self.routes.snapshot(),
            latencies_ms: self.run_latencies_ms.lock().expect("latency lock").clone(),
            store_spec: self.store.spec_string(),
            store: self.store.stats(),
        }
    }

    fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the accept loop: it only re-checks the flag after an
        // accept, so dial our own listener once.
        let _ = TcpStream::connect(self.addr);
    }
}

/// A bound-but-not-yet-running daemon.
pub struct Server {
    listener: TcpListener,
    cfg: ServeConfig,
    state: Arc<ServerState>,
}

impl Server {
    /// Binds the listener (use port `0` for an ephemeral port).
    pub fn bind(addr: &str, cfg: ServeConfig) -> std::io::Result<Server> {
        let store = build_plan_store(&cfg.plan_store)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e.to_string()))?;
        let listener = TcpListener::bind(addr)?;
        let state = Arc::new(ServerState {
            addr: listener.local_addr()?,
            started: Instant::now(),
            served: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            queued: AtomicU64::new(0),
            routes: RouteCounters::default(),
            shutdown: AtomicBool::new(false),
            run_latencies_ms: Mutex::new(Vec::new()),
            store,
        });
        Ok(Server {
            listener,
            cfg,
            state,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// The shared counter state.
    pub fn state(&self) -> Arc<ServerState> {
        Arc::clone(&self.state)
    }

    /// Serves until `POST /shutdown`. Blocks the calling thread.
    pub fn run(self) -> std::io::Result<()> {
        let Server {
            listener,
            cfg,
            state,
        } = self;
        let workers = cfg.workers.max(1);
        let (tx, rx) = mpsc::sync_channel::<TcpStream>(cfg.queue.max(1));
        let rx = Arc::new(Mutex::new(rx));

        let mut pool = Vec::with_capacity(workers);
        for i in 0..workers {
            let rx = Arc::clone(&rx);
            let state = Arc::clone(&state);
            let cfg = cfg.clone();
            pool.push(
                std::thread::Builder::new()
                    .name(format!("skp-serve-worker-{i}"))
                    .spawn(move || loop {
                        let next = rx.lock().expect("queue lock").recv();
                        let Ok(stream) = next else { break };
                        state.queued.fetch_sub(1, Ordering::SeqCst);
                        state.in_flight.fetch_add(1, Ordering::SeqCst);
                        handle_connection(stream, &state, &cfg);
                        state.in_flight.fetch_sub(1, Ordering::SeqCst);
                    })?,
            );
        }

        for stream in listener.incoming() {
            if state.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            // Count the slot before handing the stream over: a worker
            // may pull it (and decrement) the instant try_send returns.
            state.queued.fetch_add(1, Ordering::SeqCst);
            match tx.try_send(stream) {
                Ok(()) => {}
                Err(mpsc::TrySendError::Full(mut stream)) => {
                    state.queued.fetch_sub(1, Ordering::SeqCst);
                    state.shed.fetch_add(1, Ordering::SeqCst);
                    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
                    let _ = Response::error(
                        503,
                        "queue-full",
                        &format!(
                            "admission queue is full ({} slots); retry shortly",
                            cfg.queue.max(1)
                        ),
                    )
                    .with_retry_after(RETRY_AFTER_SECS)
                    .write(&mut stream);
                }
                Err(mpsc::TrySendError::Disconnected(_)) => {
                    state.queued.fetch_sub(1, Ordering::SeqCst);
                    break;
                }
            }
        }
        drop(tx);
        for worker in pool {
            let _ = worker.join();
        }
        Ok(())
    }

    /// Runs the daemon on a background thread; the handle shuts it down.
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let addr = self.local_addr();
        let state = self.state();
        let thread = std::thread::Builder::new()
            .name("skp-serve-acceptor".to_string())
            .spawn(move || self.run())?;
        Ok(ServerHandle {
            addr,
            state,
            thread,
        })
    }
}

/// Handle to a daemon running on a background thread (tests, CI).
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServerState>,
    thread: std::thread::JoinHandle<std::io::Result<()>>,
}

impl ServerHandle {
    /// The daemon's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared counter state.
    pub fn state(&self) -> &ServerState {
        &self.state
    }

    /// Requests shutdown and joins the server thread.
    pub fn shutdown(self) -> std::io::Result<()> {
        // Ask politely over HTTP first so the round-trip is exercised;
        // the direct flag + wake below covers a daemon whose workers
        // are all wedged on silent clients.
        let _ = speculative_prefetch::http_request(
            &self.addr.to_string(),
            "POST",
            "/shutdown",
            Some("{}"),
        );
        self.state.request_shutdown();
        self.thread
            .join()
            .map_err(|_| std::io::Error::other("server thread panicked"))?
    }
}

// ---------------------------------------------------------------------
// Per-connection handling and routing.
// ---------------------------------------------------------------------

fn handle_connection(mut stream: TcpStream, state: &Arc<ServerState>, cfg: &ServeConfig) {
    let _ = stream.set_read_timeout(Some(CLIENT_TIMEOUT));
    let _ = stream.set_write_timeout(Some(CLIENT_TIMEOUT));
    let started = Instant::now();
    let response = match http::read_request(&mut stream, cfg.max_body) {
        Ok(req) => {
            let response = route(&req, state, cfg);
            if req.method == "POST" && req.path == "/run" {
                let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
                state
                    .run_latencies_ms
                    .lock()
                    .expect("latency lock")
                    .push(elapsed_ms);
            }
            Some(response)
        }
        Err(e) => e.into_response(),
    };
    if let Some(response) = response {
        let _ = response.write(&mut stream);
        state.served.fetch_add(1, Ordering::SeqCst);
    }
}

fn route(req: &Request, state: &Arc<ServerState>, cfg: &ServeConfig) -> Response {
    state.routes.hit(&req.path);
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/version") => Response::json(format!(
            "{{\"name\":\"skp-serve\",\"version\":\"{}\",\"workers\":{},\"queue\":{}}}",
            env!("CARGO_PKG_VERSION"),
            cfg.workers.max(1),
            cfg.queue.max(1)
        )),
        ("GET", "/registry") => Response::json(registry_json()),
        ("GET", "/stats") => Response::json(stats_json(&state.snapshot())),
        ("GET", "/metrics") => Response::json(metrics_text(&state.snapshot()))
            .with_content_type("text/plain; version=0.0.4; charset=utf-8"),
        ("POST", "/run") => handle_run(&req.body, &state.store),
        ("POST", "/shutdown") => {
            state.request_shutdown();
            Response::json("{\"shutting_down\":true}".to_string())
        }
        (
            method,
            path @ ("/version" | "/registry" | "/stats" | "/metrics" | "/run" | "/shutdown"),
        ) => Response::error(
            405,
            "method-not-allowed",
            &format!(
                "{method} is not allowed on {path} \
                 (GET /version|/registry|/stats|/metrics, POST /run|/shutdown)"
            ),
        ),
        (_, path) => Response::error(404, "not-found", &format!("no route for '{path}'")),
    }
}

fn registry_json() -> String {
    let opt = |p: Option<&'static str>| match p {
        Some(p) => format!("\"{}\"", esc(p)),
        None => "null".to_string(),
    };
    let policies = list(policy_specs(), |s| {
        format!(
            "{{\"name\":\"{}\",\"aliases\":{},\"summary\":\"{}\",\"param\":{}}}",
            esc(s.name),
            list(s.aliases, |a| format!("\"{}\"", esc(a))),
            esc(s.summary),
            opt(s.param)
        )
    });
    let predictors = list(predictor_specs(), |s| {
        format!(
            "{{\"name\":\"{}\",\"summary\":\"{}\",\"param\":{}}}",
            esc(s.name),
            esc(s.summary),
            opt(s.param)
        )
    });
    let backends = list(&backend_specs(), |s| {
        format!(
            "{{\"name\":\"{}\",\"params\":\"{}\",\"summary\":\"{}\"}}",
            esc(s.name),
            esc(s.params),
            esc(s.summary)
        )
    });
    let plan_stores = list(&plan_store_specs(), |s| {
        format!(
            "{{\"name\":\"{}\",\"params\":\"{}\",\"summary\":\"{}\"}}",
            esc(s.name),
            esc(s.params),
            esc(s.summary)
        )
    });
    let obs_sinks = list(&obs_sink_specs(), |s| {
        format!(
            "{{\"name\":\"{}\",\"params\":\"{}\",\"summary\":\"{}\"}}",
            esc(s.name),
            esc(s.params),
            esc(s.summary)
        )
    });
    format!(
        "{{\"policies\":{policies},\"predictors\":{predictors},\
         \"backends\":{backends},\"plan_stores\":{plan_stores},\"obs_sinks\":{obs_sinks}}}"
    )
}

fn stats_json(snap: &StatsSnapshot) -> String {
    let mut samples = snap.latencies_ms.clone();
    let access = AccessStats::from_samples(&mut samples);
    let ps = &snap.store;
    let tiers = list(&ps.tiers, |t| {
        format!(
            "{{\"tier\":\"{}\",\"hits\":{},\"misses\":{},\"evictions\":{},\
             \"promotions\":{},\"entries\":{}}}",
            esc(&t.tier),
            t.hits,
            t.misses,
            t.evictions,
            t.promotions,
            t.entries
        )
    });
    let requests = list(&snap.routes, |(route, n)| {
        format!("{{\"route\":\"{}\",\"requests\":{n}}}", esc(route))
    });
    format!(
        "{{\"uptime_secs\":{:.3},\"served\":{},\"shed\":{},\"in_flight\":{},\
         \"queue_depth\":{},\"requests\":{requests},\"run_latency_ms\":{},\
         \"plan_store\":{{\"spec\":\"{}\",\"lookups\":{},\"hits\":{},\"misses\":{},\
         \"tiers\":{tiers}}}}}",
        snap.uptime_secs,
        snap.served,
        snap.shed,
        snap.in_flight,
        snap.queue_depth,
        render_access(&access),
        esc(&snap.store_spec),
        ps.lookups,
        ps.hits,
        ps.misses(),
    )
}

/// The `GET /metrics` body: the same [`StatsSnapshot`] as `/stats`,
/// rendered to the Prometheus text exposition format by the shared
/// `obs::prom` module — so the output is guaranteed to parse back
/// (`obs::prom::parse`, the `promcheck` binary CI runs against it).
fn metrics_text(snap: &StatsSnapshot) -> String {
    use obs::prom::{Family, MetricKind, Point, PointValue};
    let value = |v: f64| PointValue::Value(v);
    let plain = |name: &str, help: &str, kind: MetricKind, v: f64| Family {
        name: name.to_string(),
        help: help.to_string(),
        kind,
        points: vec![Point {
            labels: Vec::new(),
            value: value(v),
        }],
    };
    let labelled =
        |name: &str, help: &str, kind: MetricKind, label: &str, points: &[(&str, f64)]| Family {
            name: name.to_string(),
            help: help.to_string(),
            kind,
            points: points
                .iter()
                .map(|(who, v)| Point {
                    labels: vec![(label.to_string(), who.to_string())],
                    value: value(*v),
                })
                .collect(),
        };

    // The run-latency histogram: `/stats` keeps millisecond percentiles
    // for humans; the exposition uses base-unit seconds over the same
    // bucket edges every obs time histogram uses.
    let mut buckets: Vec<(f64, u64)> = obs::TIME_BUCKETS.iter().map(|&le| (le, 0)).collect();
    buckets.push((f64::INFINITY, 0));
    let mut sum = 0.0;
    for &ms in &snap.latencies_ms {
        let seconds = ms / 1e3;
        sum += seconds;
        for (le, n) in buckets.iter_mut() {
            if seconds <= *le {
                *n += 1;
            }
        }
    }

    let routes: Vec<(&str, f64)> = snap.routes.iter().map(|&(r, n)| (r, n as f64)).collect();
    let ps = &snap.store;
    let tier_points = |pick: fn(&speculative_prefetch::TierStats) -> f64| -> Vec<(&str, f64)> {
        ps.tiers
            .iter()
            .map(|t| (t.tier.as_str(), pick(t)))
            .collect()
    };

    let mut families = vec![
        plain(
            "skp_uptime_seconds",
            "Seconds since the daemon bound its listener.",
            MetricKind::Gauge,
            snap.uptime_secs,
        ),
        labelled(
            "skp_requests_total",
            "Requests routed, by route ('other' folds unknown paths).",
            MetricKind::Counter,
            "route",
            &routes,
        ),
        plain(
            "skp_requests_served_total",
            "Requests answered by a worker (any status).",
            MetricKind::Counter,
            snap.served as f64,
        ),
        plain(
            "skp_requests_shed_total",
            "Connections shed with 503 by the accept loop.",
            MetricKind::Counter,
            snap.shed as f64,
        ),
        plain(
            "skp_in_flight",
            "Connections currently held by workers.",
            MetricKind::Gauge,
            snap.in_flight as f64,
        ),
        plain(
            "skp_worker_queue_depth",
            "Connections admitted but not yet picked up by a worker.",
            MetricKind::Gauge,
            snap.queue_depth as f64,
        ),
        Family {
            name: "skp_run_latency_seconds".to_string(),
            help: "POST /run wall time, request read to response routed.".to_string(),
            kind: MetricKind::Histogram,
            points: vec![Point {
                labels: Vec::new(),
                value: PointValue::Histogram {
                    buckets,
                    sum,
                    count: snap.latencies_ms.len() as u64,
                },
            }],
        },
        plain(
            "skp_plan_store_lookups_total",
            "Plan-set lookups against the daemon's shared plan store.",
            MetricKind::Counter,
            ps.lookups as f64,
        ),
        plain(
            "skp_plan_store_hits_total",
            "Plan-set lookups answered from the shared plan store.",
            MetricKind::Counter,
            ps.hits as f64,
        ),
    ];
    if !ps.tiers.is_empty() {
        families.extend([
            labelled(
                "skp_plan_store_tier_hits_total",
                "Per-tier plan store hits.",
                MetricKind::Counter,
                "tier",
                &tier_points(|t| t.hits as f64),
            ),
            labelled(
                "skp_plan_store_tier_misses_total",
                "Per-tier plan store misses.",
                MetricKind::Counter,
                "tier",
                &tier_points(|t| t.misses as f64),
            ),
            labelled(
                "skp_plan_store_tier_evictions_total",
                "Per-tier plan store evictions.",
                MetricKind::Counter,
                "tier",
                &tier_points(|t| t.evictions as f64),
            ),
            labelled(
                "skp_plan_store_tier_promotions_total",
                "Per-tier plan store promotions on hit.",
                MetricKind::Counter,
                "tier",
                &tier_points(|t| t.promotions as f64),
            ),
            labelled(
                "skp_plan_store_tier_entries",
                "Plan sets currently retained, per tier.",
                MetricKind::Gauge,
                "tier",
                &tier_points(|t| t.entries as f64),
            ),
        ]);
    }
    obs::prom::render(&families)
}

// ---------------------------------------------------------------------
// POST /run: execute a wire run or a .skp workload file.
// ---------------------------------------------------------------------

fn handle_run(body: &str, store: &Arc<dyn PlanStore>) -> Response {
    let trimmed = body.trim_start();
    if trimmed.is_empty() {
        return Response::error(
            400,
            "empty-body",
            "POST /run needs a .skp workload file or a wire-run JSON object as its body",
        );
    }
    let outcome = if trimmed.starts_with('{') {
        run_wire(body, store)
    } else {
        run_workload_file(body, store)
    };
    match outcome {
        Ok(body) => Response::json(body),
        Err(e) => Response::error(status_for(&e), error_kind(&e), &e.to_string()),
    }
}

fn run_wire(body: &str, store: &Arc<dyn PlanStore>) -> Result<String, Error> {
    let wire_run = WireRun::parse(body)?;
    if wire_run.backend.starts_with("served") {
        return Err(Error::InvalidParam {
            what: "wire run",
            detail: "the daemon does not chain to other daemons; \
                     post the inner backend spec directly"
                .to_string(),
        });
    }
    let (mut engine, workload) = wire_run.instantiate_with_store(Arc::clone(store))?;
    let report = engine.run(&workload)?;
    Ok(report_json(&wire_run.kind, &engine, &report, &[]))
}

fn run_workload_file(body: &str, store: &Arc<dyn PlanStore>) -> Result<String, Error> {
    let file = parse_workload(body)?;
    // A `plan-store` directive in the posted file still wins; files
    // without one share the daemon's store across clients.
    let mut engine = file.build_engine_with_store(Some(Arc::clone(store)))?;
    let workload: Workload = file.workload()?;
    let report = engine.run(&workload)?;
    Ok(report_json(
        file.kind.name(),
        &engine,
        &report,
        &file.labels,
    ))
}

fn report_json(
    workload: &str,
    engine: &Engine,
    report: &speculative_prefetch::RunReport,
    labels: &[String],
) -> String {
    // The exact shape `skp-plan run --format json` prints, so a served
    // round-trip and a local run are diffable line for line.
    format!(
        "{{\"workload\":\"{}\",\"backend\":\"{}\",\"policy\":\"{}\",{}}}",
        esc(workload),
        esc(&engine.backend_spec_string()),
        esc(engine.policy_name()),
        render_report_fields(report, labels)
    )
}

fn error_kind(e: &Error) -> &'static str {
    match e {
        Error::Model(_) => "model",
        Error::Parse(_) => "parse",
        Error::UnknownPolicy { .. } => "unknown-policy",
        Error::UnknownPredictor { .. } => "unknown-predictor",
        Error::UnknownBackend { .. } => "unknown-backend",
        Error::InvalidParam { .. } => "invalid-param",
        Error::MissingComponent { .. } => "missing-component",
        Error::UnsupportedBackend { .. } => "unsupported-backend",
        Error::Mismatch { .. } => "mismatch",
        Error::Served { .. } => "served",
        Error::Io(_) => "io",
    }
}

fn status_for(e: &Error) -> u16 {
    match e {
        // A verification mismatch or I/O failure is the daemon's
        // problem; everything else is a bad request.
        Error::Mismatch { .. } | Error::Io(_) => 500,
        _ => 400,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_store() -> Arc<dyn PlanStore> {
        build_plan_store("memory:1x8").expect("valid spec")
    }

    #[test]
    fn registry_json_lists_every_registry() {
        let j = registry_json();
        assert!(j.contains("\"policies\":["));
        assert!(j.contains("\"predictors\":["));
        assert!(j.contains("\"backends\":["));
        assert!(j.contains("\"plan_stores\":["));
        assert!(j.contains("\"obs_sinks\":["));
        assert!(j.contains("skp-exact"));
        assert!(j.contains("\"served\""));
        assert!(j.contains("\"tiered\""));
        assert!(j.contains("\"sampled\""));
        // It is valid JSON by the wire module's own parser.
        speculative_prefetch::wire::Json::parse(&j).expect("registry JSON parses");
    }

    /// A fully deterministic snapshot for the exposition goldens.
    fn sample_snapshot() -> StatsSnapshot {
        StatsSnapshot {
            uptime_secs: 12.5,
            served: 9,
            shed: 2,
            in_flight: 1,
            queue_depth: 3,
            routes: vec![("/run", 4), ("/stats", 1), ("other", 0)],
            latencies_ms: vec![250.0, 500.0, 750.0],
            store_spec: "tiered:hot:4,memory:1x8".to_string(),
            store: PlanStoreStats {
                lookups: 4,
                hits: 3,
                tiers: vec![
                    speculative_prefetch::TierStats {
                        tier: "hot:4".to_string(),
                        hits: 2,
                        misses: 2,
                        evictions: 0,
                        promotions: 1,
                        entries: 2,
                    },
                    speculative_prefetch::TierStats {
                        tier: "memory:1x8".to_string(),
                        hits: 1,
                        misses: 1,
                        evictions: 0,
                        promotions: 0,
                        entries: 1,
                    },
                ],
            },
        }
    }

    #[test]
    fn metrics_text_matches_the_exposition_golden() {
        let text = metrics_text(&sample_snapshot());
        let golden = "\
# HELP skp_uptime_seconds Seconds since the daemon bound its listener.\n\
# TYPE skp_uptime_seconds gauge\n\
skp_uptime_seconds 12.5\n\
# HELP skp_requests_total Requests routed, by route ('other' folds unknown paths).\n\
# TYPE skp_requests_total counter\n\
skp_requests_total{route=\"/run\"} 4\n\
skp_requests_total{route=\"/stats\"} 1\n\
skp_requests_total{route=\"other\"} 0\n\
# HELP skp_requests_served_total Requests answered by a worker (any status).\n\
# TYPE skp_requests_served_total counter\n\
skp_requests_served_total 9\n\
# HELP skp_requests_shed_total Connections shed with 503 by the accept loop.\n\
# TYPE skp_requests_shed_total counter\n\
skp_requests_shed_total 2\n\
# HELP skp_in_flight Connections currently held by workers.\n\
# TYPE skp_in_flight gauge\n\
skp_in_flight 1\n\
# HELP skp_worker_queue_depth Connections admitted but not yet picked up by a worker.\n\
# TYPE skp_worker_queue_depth gauge\n\
skp_worker_queue_depth 3\n";
        assert!(
            text.starts_with(golden),
            "exposition prefix drifted:\n{text}"
        );
        // The latency histogram is a complete triple over the shared
        // bucket edges: 250ms and 500ms fall under the 0.5s edge,
        // 750ms under 1s.
        assert!(text.contains("skp_run_latency_seconds_bucket{le=\"0.005\"} 0\n"));
        assert!(text.contains("skp_run_latency_seconds_bucket{le=\"0.5\"} 2\n"));
        assert!(text.contains("skp_run_latency_seconds_bucket{le=\"1\"} 3\n"));
        assert!(text.contains("skp_run_latency_seconds_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("skp_run_latency_seconds_sum 1.5\n"));
        assert!(text.contains("skp_run_latency_seconds_count 3\n"));
        // Per-tier families carry the tier label.
        assert!(text.contains("skp_plan_store_tier_hits_total{tier=\"hot:4\"} 2\n"));
        assert!(text.contains("skp_plan_store_tier_entries{tier=\"memory:1x8\"} 1\n"));
    }

    #[test]
    fn metrics_text_parses_back_to_the_same_counters() {
        let snap = sample_snapshot();
        let families = obs::prom::parse(&metrics_text(&snap)).expect("own exposition parses");
        let find = |name: &str| {
            families
                .iter()
                .find(|f| f.name == name)
                .unwrap_or_else(|| panic!("family {name} missing"))
        };
        let scalar = |name: &str| match &find(name).points[0].value {
            obs::prom::PointValue::Value(v) => *v,
            other => panic!("{name}: expected a scalar, got {other:?}"),
        };
        assert_eq!(scalar("skp_requests_served_total"), snap.served as f64);
        assert_eq!(scalar("skp_requests_shed_total"), snap.shed as f64);
        assert_eq!(scalar("skp_worker_queue_depth"), snap.queue_depth as f64);
        assert_eq!(scalar("skp_plan_store_hits_total"), snap.store.hits as f64);
        let routes = find("skp_requests_total");
        assert_eq!(routes.points.len(), snap.routes.len());
        match &find("skp_run_latency_seconds").points[0].value {
            obs::prom::PointValue::Histogram { count, .. } => {
                assert_eq!(*count, snap.latencies_ms.len() as u64)
            }
            other => panic!("expected a histogram, got {other:?}"),
        }
    }

    #[test]
    fn stats_json_and_metrics_report_the_same_snapshot() {
        let snap = sample_snapshot();
        let j = stats_json(&snap);
        assert!(j.contains("\"uptime_secs\":12.500"), "{j}");
        assert!(j.contains("\"queue_depth\":3"), "{j}");
        assert!(j.contains("{\"route\":\"/run\",\"requests\":4}"), "{j}");
        speculative_prefetch::wire::Json::parse(&j).expect("stats JSON parses");
    }

    #[test]
    fn run_rejects_daemon_chaining() {
        let run = WireRun {
            kind: "sharded".to_string(),
            backend: "served:127.0.0.1:7077:parallel".to_string(),
            policy: "skp-exact".to_string(),
            requests_per_client: 1,
            seed: 1,
            traced: false,
            retrievals: vec![1.0, 2.0],
            viewing: vec![1.0, 1.0],
            rows: vec![vec![(1, 1.0)], vec![(0, 1.0)]],
        };
        let err = run_wire(&run.render(), &test_store())
            .unwrap_err()
            .to_string();
        assert!(err.contains("chain"), "{err}");
    }

    #[test]
    fn empty_and_invalid_bodies_map_to_400() {
        let store = test_store();
        assert_eq!(handle_run("", &store).status, 400);
        let resp = handle_run("not a workload file", &store);
        assert_eq!(resp.status, 400);
        assert!(
            resp.body.starts_with("{\"error\":{\"kind\":\"parse\""),
            "{}",
            resp.body
        );
        let resp = handle_run("{\"kind\":\"sharded\"}", &store);
        assert_eq!(resp.status, 400);
        assert!(resp.body.contains("invalid-param"), "{}", resp.body);
    }

    #[test]
    fn bad_plan_store_spec_fails_bind() {
        let cfg = ServeConfig {
            plan_store: "hot:0".to_string(),
            ..ServeConfig::default()
        };
        let err = match Server::bind("127.0.0.1:0", cfg) {
            Err(e) => e,
            Ok(_) => panic!("a malformed plan-store spec must fail bind"),
        };
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
        assert!(err.to_string().contains("cap"), "{err}");
    }
}
