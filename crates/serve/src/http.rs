//! Minimal HTTP/1.1 request parsing and response writing over a
//! [`TcpStream`].
//!
//! This is deliberately not a web framework: the daemon speaks exactly
//! the subset the `served:` backend and a curl session need —
//! `Connection: close` per request, `Content-Length` bodies, no chunked
//! transfer, no keep-alive, no TLS. Every way a request can be
//! malformed maps to one typed [`HttpError`] carrying the status code
//! the worker answers with, so wire-boundary failures are structured
//! instead of dropped connections.

use std::io::{BufReader, Read, Write};
use std::net::TcpStream;

/// Longest accepted request line or header line, in bytes. Anything
/// longer is a client bug or an attack, not a workload.
pub const MAX_LINE: usize = 8 * 1024;

/// A parsed request: method, path and (possibly empty) body.
#[derive(Debug)]
pub struct Request {
    /// The request method (`GET`, `POST`, …), as sent.
    pub method: String,
    /// The request path (`/run`, `/stats`, …), as sent.
    pub path: String,
    /// The request body, decoded as UTF-8.
    pub body: String,
}

/// Everything that can go wrong between `accept()` and a routable
/// [`Request`], tagged with the HTTP status it maps to.
#[derive(Debug)]
pub enum HttpError {
    /// 400 — the request line, a header or the body bytes were
    /// malformed (includes truncated requests: EOF mid-line).
    BadRequest(String),
    /// 411 — a `POST` arrived without `Content-Length`; the daemon
    /// never guesses body framing.
    LengthRequired,
    /// 413 — the declared `Content-Length` exceeds the configured body
    /// cap. Detected before reading the body.
    PayloadTooLarge {
        /// Declared body size in bytes.
        declared: usize,
        /// The configured cap it exceeded.
        limit: usize,
    },
    /// The client vanished or timed out mid-request; nothing to answer.
    Disconnected,
}

impl HttpError {
    /// The response this error maps to (`Disconnected` maps to none).
    pub fn into_response(self) -> Option<Response> {
        match self {
            HttpError::BadRequest(detail) => Some(Response::error(400, "bad-request", &detail)),
            HttpError::LengthRequired => Some(Response::error(
                411,
                "length-required",
                "POST bodies need a Content-Length header (chunked transfer is not supported)",
            )),
            HttpError::PayloadTooLarge { declared, limit } => Some(Response::error(
                413,
                "payload-too-large",
                &format!("request body of {declared} bytes exceeds the {limit}-byte limit"),
            )),
            HttpError::Disconnected => None,
        }
    }
}

/// Reads one `\r\n`-terminated line, rejecting lines over `MAX_LINE`
/// bytes. EOF before the terminator is a truncated request.
fn read_line(reader: &mut BufReader<&mut TcpStream>) -> Result<String, HttpError> {
    let mut line = Vec::with_capacity(128);
    let mut byte = [0u8; 1];
    loop {
        match reader.read(&mut byte) {
            Ok(0) => {
                return if line.is_empty() {
                    Err(HttpError::Disconnected)
                } else {
                    Err(HttpError::BadRequest(
                        "request truncated mid-line (connection closed before CRLF)".to_string(),
                    ))
                }
            }
            Ok(_) => {}
            Err(e) => {
                return Err(match e.kind() {
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => {
                        HttpError::Disconnected
                    }
                    _ => HttpError::BadRequest(format!("read failed: {e}")),
                })
            }
        }
        if byte[0] == b'\n' {
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            return String::from_utf8(line).map_err(|_| {
                HttpError::BadRequest("header bytes are not valid UTF-8".to_string())
            });
        }
        line.push(byte[0]);
        if line.len() > MAX_LINE {
            return Err(HttpError::BadRequest(format!(
                "header line exceeds {MAX_LINE} bytes"
            )));
        }
    }
}

/// Reads and parses one request from the stream, enforcing `max_body`.
pub fn read_request(stream: &mut TcpStream, max_body: usize) -> Result<Request, HttpError> {
    let mut reader = BufReader::new(stream);

    let request_line = read_line(&mut reader)?;
    let mut parts = request_line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && !p.is_empty() => (m, p, v),
        _ => {
            return Err(HttpError::BadRequest(format!(
                "malformed request line '{}' (expected 'METHOD /path HTTP/1.1')",
                truncate(&request_line)
            )))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::BadRequest(format!(
            "unsupported protocol version '{}'",
            truncate(version)
        )));
    }
    let method = method.to_string();
    let path = path.to_string();

    let mut content_length: Option<usize> = None;
    loop {
        let header = read_line(&mut reader)?;
        if header.is_empty() {
            break;
        }
        let Some((name, value)) = header.split_once(':') else {
            return Err(HttpError::BadRequest(format!(
                "malformed header '{}' (no colon)",
                truncate(&header)
            )));
        };
        if name.eq_ignore_ascii_case("content-length") {
            content_length = Some(value.trim().parse().map_err(|_| {
                HttpError::BadRequest(format!(
                    "Content-Length '{}' is not a byte count",
                    value.trim()
                ))
            })?);
        }
    }

    let body = match content_length {
        None if method == "POST" => return Err(HttpError::LengthRequired),
        None | Some(0) => String::new(),
        Some(declared) if declared > max_body => {
            return Err(HttpError::PayloadTooLarge {
                declared,
                limit: max_body,
            })
        }
        Some(declared) => {
            let mut raw = vec![0u8; declared];
            reader.read_exact(&mut raw).map_err(|e| match e.kind() {
                std::io::ErrorKind::UnexpectedEof => HttpError::BadRequest(format!(
                    "body truncated (Content-Length said {declared} bytes)"
                )),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => {
                    HttpError::Disconnected
                }
                _ => HttpError::BadRequest(format!("body read failed: {e}")),
            })?;
            String::from_utf8(raw)
                .map_err(|_| HttpError::BadRequest("body bytes are not valid UTF-8".to_string()))?
        }
    };

    Ok(Request { method, path, body })
}

fn truncate(raw: &str) -> String {
    const SHOWN: usize = 64;
    if raw.len() <= SHOWN {
        raw.to_string()
    } else {
        let cut = (0..=SHOWN).rev().find(|&i| raw.is_char_boundary(i));
        format!("{}…", &raw[..cut.unwrap_or(0)])
    }
}

/// A response ready to serialise: status, body, content type and the
/// optional `Retry-After` hint the load-shedding path sets.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Response body.
    pub body: String,
    /// `Content-Type` header value (`application/json` unless a
    /// constructor or [`with_content_type`](Self::with_content_type)
    /// says otherwise — `GET /metrics` answers Prometheus text).
    pub content_type: &'static str,
    /// Seconds for the `Retry-After` header, set on `503`.
    pub retry_after: Option<u32>,
}

impl Response {
    /// A `200 OK` with the given JSON body.
    pub fn json(body: String) -> Self {
        Response {
            status: 200,
            body,
            content_type: "application/json",
            retry_after: None,
        }
    }

    /// A structured error: `{"error":{"kind":…,"detail":…}}`.
    pub fn error(status: u16, kind: &str, detail: &str) -> Self {
        Response {
            status,
            body: format!(
                "{{\"error\":{{\"kind\":\"{}\",\"detail\":\"{}\"}}}}",
                speculative_prefetch::wire::esc(kind),
                speculative_prefetch::wire::esc(detail)
            ),
            content_type: "application/json",
            retry_after: None,
        }
    }

    /// Attaches a `Retry-After` hint (the load-shedding `503` path).
    pub fn with_retry_after(mut self, seconds: u32) -> Self {
        self.retry_after = Some(seconds);
        self
    }

    /// Overrides the `Content-Type` header.
    pub fn with_content_type(mut self, content_type: &'static str) -> Self {
        self.content_type = content_type;
        self
    }

    /// Serialises the response onto the stream (`Connection: close`).
    pub fn write(&self, stream: &mut TcpStream) -> std::io::Result<()> {
        let reason = match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            411 => "Length Required",
            413 => "Payload Too Large",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        };
        let retry = self
            .retry_after
            .map(|s| format!("Retry-After: {s}\r\n"))
            .unwrap_or_default();
        let head = format!(
            "HTTP/1.1 {} {reason}\r\nContent-Type: {}\r\nContent-Length: {}\r\n{retry}Connection: close\r\n\r\n",
            self.status,
            self.content_type,
            self.body.len()
        );
        stream.write_all(head.as_bytes())?;
        stream.write_all(self.body.as_bytes())?;
        stream.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_responses_are_structured_json() {
        let r = Response::error(400, "bad-request", "no \"colon\"");
        assert_eq!(r.status, 400);
        assert!(r.body.starts_with("{\"error\":{\"kind\":\"bad-request\""));
        assert!(r.body.contains("\\\"colon\\\""), "{}", r.body);
    }

    #[test]
    fn retry_after_is_carried() {
        let r = Response::error(503, "queue-full", "x").with_retry_after(1);
        assert_eq!(r.retry_after, Some(1));
    }

    #[test]
    fn content_type_defaults_to_json_and_can_be_overridden() {
        assert_eq!(Response::json("{}".into()).content_type, "application/json");
        assert_eq!(
            Response::error(400, "bad-request", "x").content_type,
            "application/json"
        );
        let r = Response::json("x 1\n".into())
            .with_content_type("text/plain; version=0.0.4; charset=utf-8");
        assert!(r.content_type.starts_with("text/plain"));
    }

    #[test]
    fn http_errors_map_to_their_statuses() {
        assert_eq!(
            HttpError::BadRequest("x".into())
                .into_response()
                .unwrap()
                .status,
            400
        );
        assert_eq!(
            HttpError::LengthRequired.into_response().unwrap().status,
            411
        );
        let r = HttpError::PayloadTooLarge {
            declared: 10,
            limit: 5,
        }
        .into_response()
        .unwrap();
        assert_eq!(r.status, 413);
        assert!(r.body.contains("10") && r.body.contains('5'));
        assert!(HttpError::Disconnected.into_response().is_none());
    }
}
