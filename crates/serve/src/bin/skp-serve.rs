//! `skp-serve` — run (or stop) the resident prefetch-planning daemon.
//!
//! ```text
//! skp-serve [--addr 127.0.0.1:7077] [--workers N] [--queue N] [--plan-store <spec>]
//! skp-serve --shutdown <addr>
//! ```
//!
//! The daemon prints `skp-serve listening on <addr>` once bound (port
//! `0` resolves to an ephemeral port), serves until `POST /shutdown`,
//! then exits 0. `--shutdown` is the matching client: it posts the
//! shutdown request and exits 0 on a `200` answer — no curl needed.

use skp_serve::{ServeConfig, Server};

fn usage() -> ! {
    eprintln!(
        "usage: skp-serve [--addr <host:port>] [--workers N] [--queue N] [--plan-store <spec>]"
    );
    eprintln!("       skp-serve --shutdown <host:port>");
    eprintln!();
    eprintln!("defaults: --addr 127.0.0.1:7077, --workers 4, --queue 32,");
    eprintln!("          --plan-store memory:8x1024 (see `skp-plan --list` for specs)");
    eprintln!("routes:   GET /version | GET /registry | GET /stats | GET /metrics");
    eprintln!("          POST /run (a .skp file or wire-run JSON) | POST /shutdown");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .map(String::as_str)
    };
    if args.iter().any(|a| a == "--help" || a == "-h") {
        usage();
    }

    if args.iter().any(|a| a == "--shutdown") {
        let Some(addr) = flag("--shutdown") else {
            usage();
        };
        match speculative_prefetch::http_request(addr, "POST", "/shutdown", Some("{}")) {
            Ok(resp) if resp.status == 200 => {
                println!("skp-serve at {addr} is shutting down");
            }
            Ok(resp) => {
                eprintln!("skp-serve: daemon answered {}: {}", resp.status, resp.body);
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("skp-serve: cannot reach daemon at {addr}: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    let addr = flag("--addr").unwrap_or("127.0.0.1:7077").to_string();
    let mut cfg = ServeConfig::default();
    for (name, slot) in [("--workers", &mut cfg.workers), ("--queue", &mut cfg.queue)] {
        if let Some(raw) = flag(name) {
            match raw.parse::<usize>() {
                Ok(n) if n > 0 => *slot = n,
                _ => {
                    eprintln!("skp-serve: {name} '{raw}' is not a positive integer");
                    std::process::exit(2);
                }
            }
        }
    }
    if let Some(spec) = flag("--plan-store") {
        cfg.plan_store = spec.to_string();
    }

    let server = match Server::bind(&addr, cfg.clone()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("skp-serve: cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    println!("skp-serve listening on {}", server.local_addr());
    println!(
        "  {} workers, queue {}, body limit {} bytes, plan store {} (POST /shutdown to stop)",
        cfg.workers, cfg.queue, cfg.max_body, cfg.plan_store
    );
    if let Err(e) = server.run() {
        eprintln!("skp-serve: {e}");
        std::process::exit(1);
    }
}
