//! The determinism contract across the socket: a `served:` run must be
//! bit-identical to running the inner backend in process, and the
//! daemon must shed load deterministically when its admission queue is
//! full.

use std::net::TcpStream;
use std::time::{Duration, Instant};

use skp_serve::{ServeConfig, Server, ServerHandle};
use speculative_prefetch::{http_request, Engine, MarkovChain, Workload};

fn catalog() -> Vec<f64> {
    (0..24).map(|i| 1.0 + (i % 8) as f64).collect()
}

fn chain() -> MarkovChain {
    MarkovChain::random(24, 2, 4, 5, 20, 7).expect("valid chain")
}

fn spawn(cfg: ServeConfig) -> ServerHandle {
    Server::bind("127.0.0.1:0", cfg)
        .expect("bind ephemeral port")
        .spawn()
        .expect("spawn server thread")
}

fn engine(backend_spec: &str) -> Engine {
    Engine::builder()
        .policy("skp-exact")
        .catalog(catalog())
        .backend_spec(backend_spec)
        .build()
        .expect("engine builds")
}

/// The acceptance gate: `served:<addr>:parallel:8x64:hash` produces the
/// same `RunReport`, bit for bit (stats, section, every traced event),
/// as the in-process parallel backend on the same seed.
#[test]
fn served_parallel_run_is_bit_identical_to_in_process() {
    let handle = spawn(ServeConfig::default());
    let addr = handle.addr();

    let workload = Workload::sharded(chain(), 40, 1999).traced(true);
    let expected = engine("parallel:8x64:hash")
        .run(&workload)
        .expect("in-process run");
    let spec = format!("served:{}:{}:parallel:8x64:hash", addr.ip(), addr.port());
    let actual = engine(&spec).run(&workload).expect("served run");

    assert_eq!(expected, actual);
    assert!(!actual.events.is_empty(), "traced run ships its event log");
    handle.shutdown().expect("clean shutdown");
}

#[test]
fn served_multi_client_run_is_bit_identical_to_in_process() {
    let handle = spawn(ServeConfig::default());
    let addr = handle.addr();

    let workload = Workload::multi_client(chain(), 30, 42);
    let expected = engine("multi-client:8")
        .run(&workload)
        .expect("in-process run");
    let spec = format!("served:{}:{}:multi-client:8", addr.ip(), addr.port());
    let actual = engine(&spec).run(&workload).expect("served run");

    assert_eq!(expected, actual);
    handle.shutdown().expect("clean shutdown");
}

#[test]
fn daemon_errors_surface_as_served_errors() {
    let handle = spawn(ServeConfig::default());
    let addr = handle.addr();

    // An invalid wire run reaches the daemon and comes back as a
    // structured 400, which the facade wraps as Error::Served.
    let resp = http_request(
        &addr.to_string(),
        "POST",
        "/run",
        Some("{\"kind\":\"sharded\"}"),
    )
    .expect("daemon reachable");
    assert_eq!(resp.status, 400);
    assert!(resp.body.contains("\"error\""), "{}", resp.body);
    assert!(resp.body.contains("invalid-param"), "{}", resp.body);
    handle.shutdown().expect("clean shutdown");
}

#[test]
fn version_registry_and_stats_endpoints_answer() {
    let handle = spawn(ServeConfig::default());
    let addr = handle.addr().to_string();

    let version = http_request(&addr, "GET", "/version", None).expect("GET /version");
    assert_eq!(version.status, 200);
    assert!(
        version.body.contains("\"name\":\"skp-serve\""),
        "{}",
        version.body
    );
    assert!(
        version.body.contains(env!("CARGO_PKG_VERSION")),
        "{}",
        version.body
    );

    let registry = http_request(&addr, "GET", "/registry", None).expect("GET /registry");
    assert_eq!(registry.status, 200);
    for needle in ["skp-exact", "\"parallel\"", "\"served\"", "ngram"] {
        assert!(registry.body.contains(needle), "missing {needle}");
    }

    // One run, then /stats reports it in the AccessStats shape.
    let run = http_request(
        &addr,
        "POST",
        "/run",
        Some(
            &std::fs::read_to_string(concat!(
                env!("CARGO_MANIFEST_DIR"),
                "/../../examples/workloads/parallel.skp"
            ))
            .expect("example workload readable"),
        ),
    )
    .expect("POST /run");
    assert_eq!(run.status, 200, "{}", run.body);
    assert!(
        run.body.contains("\"section_kind\":\"sharded\""),
        "{}",
        run.body
    );

    let stats = http_request(&addr, "GET", "/stats", None).expect("GET /stats");
    assert_eq!(stats.status, 200);
    let doc = speculative_prefetch::wire::Json::parse(&stats.body).expect("stats JSON parses");
    let served = doc.get("served").and_then(|j| j.as_u64()).expect("served");
    assert!(served >= 3, "stats: {}", stats.body);
    let latency = doc.get("run_latency_ms").expect("latency block");
    assert_eq!(
        latency.get("count").and_then(|j| j.as_u64()),
        Some(1),
        "one /run so one latency sample: {}",
        stats.body
    );
    handle.shutdown().expect("clean shutdown");
}

/// The cross-client warm path: the second identical `POST /run` is
/// served from the daemon's shared plan store — the body stays
/// byte-identical (the determinism contract), and only `GET /stats`
/// shows the hit.
#[test]
fn second_identical_run_hits_the_shared_plan_store() {
    let handle = spawn(ServeConfig::default());
    let addr = handle.addr().to_string();

    let body = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../examples/workloads/parallel.skp"
    ))
    .expect("example workload readable");

    let cold = http_request(&addr, "POST", "/run", Some(&body)).expect("cold run");
    assert_eq!(cold.status, 200, "{}", cold.body);
    let warm = http_request(&addr, "POST", "/run", Some(&body)).expect("warm run");
    assert_eq!(warm.status, 200);
    assert_eq!(cold.body, warm.body, "warm body must be byte-identical");

    let stats = http_request(&addr, "GET", "/stats", None).expect("GET /stats");
    let doc = speculative_prefetch::wire::Json::parse(&stats.body).expect("stats JSON parses");
    let ps = doc.get("plan_store").expect("plan_store block");
    assert_eq!(
        ps.get("spec").and_then(|j| j.as_str()),
        Some("memory:8x1024")
    );
    let lookups = ps.get("lookups").and_then(|j| j.as_u64()).expect("lookups");
    let hits = ps.get("hits").and_then(|j| j.as_u64()).expect("hits");
    assert_eq!(lookups, 2, "stats: {}", stats.body);
    assert!(hits >= 1, "stats: {}", stats.body);
    handle.shutdown().expect("clean shutdown");
}

/// Deterministic load shedding: one worker wedged on a silent client,
/// one queue slot filled — the next connection must be shed with `503`
/// and a `Retry-After` hint before the daemon reads any of it.
#[test]
fn full_admission_queue_sheds_with_503_retry_after() {
    let handle = spawn(ServeConfig {
        workers: 1,
        queue: 1,
        ..ServeConfig::default()
    });
    let addr = handle.addr();

    // A: accepted and handed to the lone worker, which blocks reading
    // the request we never send.
    let a = TcpStream::connect(addr).expect("connect A");
    let deadline = Instant::now() + Duration::from_secs(5);
    while handle.state().in_flight() == 0 {
        assert!(
            Instant::now() < deadline,
            "worker never picked up the first connection"
        );
        std::thread::sleep(Duration::from_millis(1));
    }

    // B: fills the single admission-queue slot.
    let b = TcpStream::connect(addr).expect("connect B");

    // C: must be shed. The accept loop answers without reading, so a
    // full request/response cycle still works from the client side.
    let resp = http_request(&addr.to_string(), "GET", "/version", None).expect("connect C");
    assert_eq!(resp.status, 503);
    assert_eq!(resp.retry_after, Some(1));
    assert!(resp.body.contains("queue-full"), "{}", resp.body);
    assert_eq!(handle.state().shed(), 1);

    // Unwedge the worker so shutdown drains promptly.
    drop(a);
    drop(b);
    handle.shutdown().expect("clean shutdown");
}
