//! Wire-boundary coverage: every way a request can be malformed maps
//! to a structured HTTP error, not a dropped connection.

use std::io::{Read, Write};
use std::net::TcpStream;

use skp_serve::{ServeConfig, Server, ServerHandle};
use speculative_prefetch::http_request;

fn spawn() -> ServerHandle {
    Server::bind("127.0.0.1:0", ServeConfig::default())
        .expect("bind ephemeral port")
        .spawn()
        .expect("spawn server thread")
}

/// Writes raw bytes, half-closes, and returns the daemon's full answer.
fn raw_exchange(handle: &ServerHandle, bytes: &[u8]) -> String {
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream.write_all(bytes).expect("write request");
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    let mut answer = String::new();
    stream.read_to_string(&mut answer).expect("read response");
    answer
}

#[test]
fn wrong_method_on_known_route_is_405() {
    let handle = spawn();
    let answer = raw_exchange(&handle, b"DELETE /run HTTP/1.1\r\n\r\n");
    assert!(answer.starts_with("HTTP/1.1 405 "), "{answer}");
    assert!(answer.contains("method-not-allowed"), "{answer}");
    // An unknown method token gets the same structured refusal.
    let answer = raw_exchange(&handle, b"FROB /stats HTTP/1.1\r\n\r\n");
    assert!(answer.starts_with("HTTP/1.1 405 "), "{answer}");
    handle.shutdown().expect("clean shutdown");
}

#[test]
fn unknown_route_is_404() {
    let handle = spawn();
    let answer = raw_exchange(&handle, b"GET /nope HTTP/1.1\r\n\r\n");
    assert!(answer.starts_with("HTTP/1.1 404 "), "{answer}");
    assert!(answer.contains("not-found"), "{answer}");
    handle.shutdown().expect("clean shutdown");
}

#[test]
fn truncated_request_line_is_400() {
    let handle = spawn();
    let answer = raw_exchange(&handle, b"POST /ru");
    assert!(answer.starts_with("HTTP/1.1 400 "), "{answer}");
    assert!(answer.contains("truncated"), "{answer}");
    handle.shutdown().expect("clean shutdown");
}

#[test]
fn malformed_request_line_and_header_are_400() {
    let handle = spawn();
    let answer = raw_exchange(&handle, b"GARBAGE\r\n\r\n");
    assert!(answer.starts_with("HTTP/1.1 400 "), "{answer}");
    assert!(answer.contains("request line"), "{answer}");

    let answer = raw_exchange(&handle, b"GET /version HTTP/1.1\r\nNoColonHere\r\n\r\n");
    assert!(answer.starts_with("HTTP/1.1 400 "), "{answer}");
    assert!(answer.contains("no colon"), "{answer}");
    handle.shutdown().expect("clean shutdown");
}

#[test]
fn post_without_content_length_is_411() {
    let handle = spawn();
    let answer = raw_exchange(&handle, b"POST /run HTTP/1.1\r\n\r\n");
    assert!(answer.starts_with("HTTP/1.1 411 "), "{answer}");
    assert!(answer.contains("length-required"), "{answer}");
    handle.shutdown().expect("clean shutdown");
}

#[test]
fn oversized_body_is_413_before_the_body_is_read() {
    let handle = spawn();
    // Declare two mebibytes; send none. The daemon must refuse from the
    // header alone.
    let answer = raw_exchange(
        &handle,
        b"POST /run HTTP/1.1\r\nContent-Length: 2097152\r\n\r\n",
    );
    assert!(answer.starts_with("HTTP/1.1 413 "), "{answer}");
    assert!(answer.contains("payload-too-large"), "{answer}");
    handle.shutdown().expect("clean shutdown");
}

#[test]
fn invalid_skp_body_is_a_structured_400() {
    let handle = spawn();
    let addr = handle.addr().to_string();
    let resp = http_request(&addr, "POST", "/run", Some("item what even is this"))
        .expect("daemon reachable");
    assert_eq!(resp.status, 400);
    assert!(
        resp.body.starts_with("{\"error\":{\"kind\":\"parse\""),
        "{}",
        resp.body
    );

    // A structurally valid but semantically broken wire run names the
    // offending field, matching the registry's spec-error style.
    let resp = http_request(&addr, "POST", "/run", Some("{\"kind\":\"sharded\"}"))
        .expect("daemon reachable");
    assert_eq!(resp.status, 400);
    assert!(resp.body.contains("'chain'"), "{}", resp.body);
    handle.shutdown().expect("clean shutdown");
}
