//! Prefetch–cache integration (Section 5): Pr-arbitration (Figure 6) with
//! optional LFU / delay-saving sub-arbitration.
//!
//! Under equal item sizes, each prefetched item must eject one cached item.
//! Figure 6 pairs the prefetch candidates `f ∈ F̂` (in descending delay
//! profit `P_f r_f`) with the cheapest cache victims `d` (minimum
//! `P_d r_d`), stopping at the first pair where the newcomer is worth less
//! than the victim. Among equally cheap victims, **sub-arbitration** picks
//! the one with the lowest access frequency (LFU) or the lowest
//! *delay-saving profit* `freq_d · r_d` (DS, after WATCHMAN \[12\]).
//!
//! A demand-fetched item "must have a victim and only requires the first
//! condition": [`choose_demand_victim`] picks the minimum-`P_d r_d` entry
//! with the same sub-arbitration, without comparing worth.
//!
//! ```
//! use skp_core::arbitration::{arbitrate, CacheEntry, SubArbitration};
//! use skp_core::{PrefetchPlan, Scenario};
//!
//! let s = Scenario::new(vec![0.6, 0.0, 0.4], vec![5.0, 5.0, 5.0], 20.0)?;
//! // The solver wants items 0 and 2; item 1 (delay profit 0) is cached.
//! let plan = PrefetchPlan::new(vec![0, 2])?;
//! let cache = [CacheEntry { id: 1, freq: 3 }];
//! let a = arbitrate(&s, &plan, &cache, 1, SubArbitration::DelaySaving);
//! assert_eq!(a.prefetch, vec![0, 2]); // free slot + one eviction
//! assert_eq!(a.eject, vec![1]);
//! # Ok::<(), skp_core::ModelError>(())
//! ```

use crate::plan::PrefetchPlan;
use crate::scenario::{ItemId, Scenario};
use crate::skp::SkpSolution;
use crate::{kp, skp};

/// Tolerance for "equal `P_d r_d`" when deciding whether sub-arbitration
/// applies.
pub const PR_TIE_TOL: f64 = 1e-12;

/// How ties among equally cheap victims are broken (Section 5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SubArbitration {
    /// No sub-arbitration: the first minimal victim wins (paper's
    /// `SKP+Pr`).
    #[default]
    None,
    /// Least-frequently-used tie-break (paper's `SKP+Pr+LFU`).
    Lfu,
    /// Lowest delay-saving profit `freq · r` tie-break (paper's
    /// `SKP+Pr+DS`, the best performer in Figure 7).
    DelaySaving,
}

/// A cache entry as seen by the arbiter: the item plus the access
/// frequency statistic used by sub-arbitration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheEntry {
    /// Item id.
    pub id: ItemId,
    /// Number of past accesses to the item (LFU / DS statistic).
    pub freq: u64,
}

/// Which solver produces the tentative plan `F̂` over the non-cached items.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlanSolver {
    /// No prefetching: arbitration degenerates to demand-fetch caching
    /// (paper's `No+Pr`).
    None,
    /// 0/1 knapsack (paper's `KP+Pr`).
    Kp,
    /// Figure-3 SKP (paper's `SKP+Pr` family).
    SkpPaper,
    /// Corrected canonical SKP.
    SkpExact,
}

impl PlanSolver {
    /// Solves for the tentative plan `F̂ ⊆ N \ C`.
    pub fn solve(&self, s: &Scenario, candidates: &[bool]) -> SkpSolution {
        match self {
            PlanSolver::None => SkpSolution::empty(),
            PlanSolver::Kp => {
                let sol = kp::bb::solve_kp_candidates(s, candidates);
                SkpSolution {
                    gain: sol.profit,
                    internal_gain: sol.profit,
                    nodes: sol.nodes,
                    plan: sol.plan,
                }
            }
            PlanSolver::SkpPaper => skp::solve_paper_candidates(s, candidates),
            PlanSolver::SkpExact => skp::solve_exact_candidates(s, candidates),
        }
    }
}

/// The outcome of Figure 6: what to prefetch and what to eject, pairwise.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Arbitration {
    /// Items to prefetch, in the tentative plan's prefetch order.
    pub prefetch: Vec<ItemId>,
    /// Ejected cache items (`|eject| ≤ |prefetch|`; shorter when free
    /// slots absorbed part of the plan).
    pub eject: Vec<ItemId>,
}

/// Runs Figure 6's Pr-arbitration for a tentative plan `F̂` against the
/// cache.
///
/// `free_slots` is the number of unoccupied cache slots: prefetched items
/// fill free slots first (no victim needed, no worth test — an empty slot
/// has zero delay profit), and only then compete with cached items.
pub fn arbitrate(
    s: &Scenario,
    tentative: &PrefetchPlan,
    cache: &[CacheEntry],
    free_slots: usize,
    sub: SubArbitration,
) -> Arbitration {
    // Candidates in descending delay profit P_f r_f.
    let mut by_worth: Vec<ItemId> = tentative.items().to_vec();
    by_worth.sort_by(|&a, &b| s.delay_profit(b).total_cmp(&s.delay_profit(a)));

    let mut live: Vec<CacheEntry> = cache.to_vec();
    let mut kept: Vec<ItemId> = Vec::with_capacity(by_worth.len());
    let mut eject: Vec<ItemId> = Vec::new();
    let mut free = free_slots;

    for f in by_worth {
        if free > 0 {
            free -= 1;
            kept.push(f);
            continue;
        }
        let Some(pos) = victim_position(s, &live, sub) else {
            break; // no cache entries left to evict
        };
        let d = live[pos];
        // Figure 6: break when the newcomer is worth less than the victim.
        if s.delay_profit(f) < s.delay_profit(d.id) {
            break;
        }
        live.swap_remove(pos);
        kept.push(f);
        eject.push(d.id);
    }

    // Preserve the tentative plan's prefetch order for the kept items so
    // the stretch structure (construction 1) survives arbitration.
    let prefetch: Vec<ItemId> = tentative
        .items()
        .iter()
        .copied()
        .filter(|i| kept.contains(i))
        .collect();

    Arbitration { prefetch, eject }
}

/// Victim selection for a **demand-fetched** item: the minimum `P_d r_d`
/// entry (with sub-arbitration), no worth comparison. Returns `None` when
/// the cache is empty.
pub fn choose_demand_victim(
    s: &Scenario,
    cache: &[CacheEntry],
    sub: SubArbitration,
) -> Option<ItemId> {
    victim_position(s, cache, sub).map(|pos| cache[pos].id)
}

/// Index of the cheapest victim under Pr-arbitration + sub-arbitration.
fn victim_position(s: &Scenario, cache: &[CacheEntry], sub: SubArbitration) -> Option<usize> {
    if cache.is_empty() {
        return None;
    }
    let pr = |e: &CacheEntry| s.delay_profit(e.id);
    let min_pr = cache
        .iter()
        .map(pr)
        .min_by(f64::total_cmp)
        .expect("non-empty");
    let tied = cache
        .iter()
        .enumerate()
        .filter(|(_, e)| (pr(e) - min_pr).abs() <= PR_TIE_TOL);
    match sub {
        SubArbitration::None => tied.map(|(i, _)| i).next(),
        SubArbitration::Lfu => tied.min_by_key(|(_, e)| e.freq).map(|(i, _)| i),
        SubArbitration::DelaySaving => tied
            .min_by(|(_, a), (_, b)| {
                let da = a.freq as f64 * s.retrieval(a.id);
                let db = b.freq as f64 * s.retrieval(b.id);
                da.total_cmp(&db)
            })
            .map(|(i, _)| i),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: ItemId, freq: u64) -> CacheEntry {
        CacheEntry { id, freq }
    }

    /// Scenario with 6 items; ids 0..2 are "hot", 3..5 cold.
    fn sc() -> Scenario {
        Scenario::new(
            vec![0.4, 0.3, 0.2, 0.1, 0.0, 0.0],
            vec![10.0, 8.0, 6.0, 4.0, 5.0, 9.0],
            20.0,
        )
        .unwrap()
    }

    #[test]
    fn worthier_newcomers_evict_cheap_victims() {
        let s = sc();
        // Cache holds the two zero-probability items; prefetch plan wants
        // items 0 and 1.
        let plan = PrefetchPlan::new(vec![0, 1]).unwrap();
        let cache = [entry(4, 3), entry(5, 1)];
        let a = arbitrate(&s, &plan, &cache, 0, SubArbitration::None);
        assert_eq!(a.prefetch, vec![0, 1]);
        assert_eq!(a.eject.len(), 2);
        assert!(a.eject.contains(&4) && a.eject.contains(&5));
    }

    #[test]
    fn break_when_newcomer_cheaper_than_victim() {
        let s = sc();
        // Prefetch the cold item 3 (P r = 0.4) against a cache of hot
        // item 0 (P r = 4.0): arbitration must refuse.
        let plan = PrefetchPlan::new(vec![3]).unwrap();
        let cache = [entry(0, 5)];
        let a = arbitrate(&s, &plan, &cache, 0, SubArbitration::None);
        assert!(a.prefetch.is_empty());
        assert!(a.eject.is_empty());
    }

    #[test]
    fn free_slots_need_no_victims() {
        let s = sc();
        let plan = PrefetchPlan::new(vec![3]).unwrap();
        // Even with a hot cached item, a free slot admits the newcomer.
        let cache = [entry(0, 5)];
        let a = arbitrate(&s, &plan, &cache, 1, SubArbitration::None);
        assert_eq!(a.prefetch, vec![3]);
        assert!(a.eject.is_empty());
    }

    #[test]
    fn pairing_stops_at_first_failure() {
        let s = sc();
        // Plan wants items 2 (Pr=1.2) and 3 (Pr=0.4); cache holds items 1
        // (Pr=2.4) and 4 (Pr=0). Item 2 evicts item 4; item 3 would face
        // victim 1 (Pr 2.4 > 0.4) and must be refused.
        let plan = PrefetchPlan::new(vec![2, 3]).unwrap();
        let cache = [entry(1, 2), entry(4, 2)];
        let a = arbitrate(&s, &plan, &cache, 0, SubArbitration::None);
        assert_eq!(a.prefetch, vec![2]);
        assert_eq!(a.eject, vec![4]);
    }

    #[test]
    fn order_of_kept_items_follows_plan() {
        let s = sc();
        // Tentative order ⟨2, 0⟩ (0 is the stretch item); both admitted.
        let plan = PrefetchPlan::new(vec![2, 0]).unwrap();
        let cache = [entry(4, 0), entry(5, 0)];
        let a = arbitrate(&s, &plan, &cache, 0, SubArbitration::None);
        assert_eq!(a.prefetch, vec![2, 0], "prefetch order must be preserved");
    }

    #[test]
    fn lfu_subarbitration_breaks_pr_ties() {
        let s = sc();
        // Items 4 and 5 both have P r = 0; LFU evicts the less frequent.
        let cache = [entry(4, 9), entry(5, 2)];
        let v = choose_demand_victim(&s, &cache, SubArbitration::Lfu);
        assert_eq!(v, Some(5));
    }

    #[test]
    fn ds_subarbitration_weighs_retrieval_time() {
        let s = sc();
        // freq·r: item 4 -> 2*5 = 10, item 5 -> 2*9 = 18. DS keeps the item
        // that would cost more network time to refetch, evicting item 4.
        let cache = [entry(4, 2), entry(5, 2)];
        let v = choose_demand_victim(&s, &cache, SubArbitration::DelaySaving);
        assert_eq!(v, Some(4));

        // LFU is blind to r and just takes the first minimal frequency.
        let v = choose_demand_victim(&s, &cache, SubArbitration::Lfu);
        assert_eq!(v, Some(4)); // tie on freq, first wins
    }

    #[test]
    fn demand_victim_ignores_worth() {
        let s = sc();
        // Cache full of hot items: a demand fetch still gets a victim.
        let cache = [entry(0, 1), entry(1, 1)];
        let v = choose_demand_victim(&s, &cache, SubArbitration::None);
        assert_eq!(v, Some(1)); // P r: item0 = 4.0, item1 = 2.4 -> item 1
    }

    #[test]
    fn empty_cache_has_no_victim() {
        let s = sc();
        assert_eq!(choose_demand_victim(&s, &[], SubArbitration::None), None);
    }

    #[test]
    fn equal_worth_is_admitted() {
        // Figure 6 breaks only on strictly-less worth; equality admits.
        let s = Scenario::new(vec![0.5, 0.5], vec![4.0, 4.0], 10.0).unwrap();
        let plan = PrefetchPlan::new(vec![0]).unwrap();
        let cache = [entry(1, 1)];
        let a = arbitrate(&s, &plan, &cache, 0, SubArbitration::None);
        assert_eq!(a.prefetch, vec![0]);
        assert_eq!(a.eject, vec![1]);
    }

    #[test]
    fn plan_solver_variants_produce_plans() {
        let s = sc();
        let candidates = vec![true; s.n()];
        assert!(PlanSolver::None.solve(&s, &candidates).plan.is_empty());
        let kp = PlanSolver::Kp.solve(&s, &candidates);
        assert!(kp.plan.total_retrieval(&s) <= s.viewing() + 1e-9);
        // The KP solution is stretch-free and thus feasible for SKP, so the
        // Figure-3 solver's own accounting dominates the KP profit (its
        // *true* gain may not; see skp::exact's suffix-mass-bug test).
        let skp = PlanSolver::SkpPaper.solve(&s, &candidates);
        assert!(skp.internal_gain >= kp.gain - 1e-9);
        // The corrected solver maximises the true gain over the canonical
        // space, which contains the KP solution.
        let exact = PlanSolver::SkpExact.solve(&s, &candidates);
        assert!(exact.gain >= kp.gain - 1e-9);
        assert!(exact.gain >= skp.gain - 1e-9);
    }
}
