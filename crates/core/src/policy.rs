//! Prefetch policies: the strategies compared in the paper's evaluation
//! (Section 4.4: *no prefetch*, *KP prefetch*, *SKP prefetch*, *perfect
//! prefetch*) packaged behind one interface.

use crate::kp;
use crate::plan::PrefetchPlan;
use crate::scenario::{ItemId, Scenario};
use crate::skp;

/// A prefetch decision procedure: given the current scenario (and
/// optionally a candidate mask), produce the plan to prefetch during the
/// viewing time.
///
/// `Send + Sync` so boxed policies can be driven from parallel
/// simulation backends (the Monte-Carlo runner fans one policy out
/// across worker threads).
pub trait Prefetcher: Send + Sync {
    /// Short display name used in experiment output.
    fn name(&self) -> &str;

    /// Plan over a subset of prefetchable items (`candidates[i]` false for
    /// items that must not be prefetched, e.g. already cached ones).
    fn plan_candidates(&self, s: &Scenario, candidates: &[bool]) -> PrefetchPlan;

    /// Plan over all items.
    fn plan(&self, s: &Scenario) -> PrefetchPlan {
        self.plan_candidates(s, &vec![true; s.n()])
    }

    /// True for oracle policies whose plan depends on the *realised*
    /// request: their [`plan_candidates`](Prefetcher::plan_candidates)
    /// returns the empty plan, and drivers that know the request must
    /// consult [`PolicyKind::plan_oracle`] instead.
    fn is_oracle(&self) -> bool {
        false
    }
}

/// The four strategies of the paper's 'prefetch only' evaluation plus the
/// exact/brute solver variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// Never prefetch; every access is a demand fetch.
    NoPrefetch,
    /// 0/1-knapsack selection (never stretches) — the paper's *KP prefetch*.
    Kp,
    /// Greedy density-order knapsack heuristic (not in the paper; cheap
    /// baseline for ablations).
    KpGreedy,
    /// The paper's Figure-3 SKP branch-and-bound (verbatim bookkeeping).
    SkpPaper,
    /// Canonical-space SKP with corrected Theorem-3 bookkeeping.
    SkpExact,
    /// Exhaustive SKP optimum (small `n` only) — ground truth.
    SkpOptimal,
    /// Oracle that prefetches exactly the item that will be requested.
    /// [`Prefetcher::plan_candidates`] returns the empty plan; simulators
    /// must consult [`PolicyKind::plan_oracle`] with the realised request.
    Perfect,
}

impl PolicyKind {
    /// All non-oracle solver-backed kinds.
    pub const SOLVERS: [PolicyKind; 5] = [
        PolicyKind::Kp,
        PolicyKind::KpGreedy,
        PolicyKind::SkpPaper,
        PolicyKind::SkpExact,
        PolicyKind::SkpOptimal,
    ];

    /// Oracle plan: prefetch the item that will actually be requested.
    /// Access time is then `max(0, r_α − v)`, the best any one-item
    /// prefetcher can achieve.
    pub fn plan_oracle(s: &Scenario, alpha: ItemId) -> PrefetchPlan {
        let _ = s;
        PrefetchPlan::new(vec![alpha]).expect("single item")
    }
}

impl Prefetcher for PolicyKind {
    fn name(&self) -> &str {
        match self {
            PolicyKind::NoPrefetch => "no prefetch",
            PolicyKind::Kp => "KP prefetch",
            PolicyKind::KpGreedy => "KP greedy",
            PolicyKind::SkpPaper => "SKP prefetch",
            PolicyKind::SkpExact => "SKP exact",
            PolicyKind::SkpOptimal => "SKP optimal",
            PolicyKind::Perfect => "perfect prefetch",
        }
    }

    fn plan_candidates(&self, s: &Scenario, candidates: &[bool]) -> PrefetchPlan {
        match self {
            PolicyKind::NoPrefetch | PolicyKind::Perfect => PrefetchPlan::empty(),
            PolicyKind::Kp => kp::bb::solve_kp_candidates(s, candidates).plan,
            PolicyKind::KpGreedy => {
                // Greedy over the candidate view.
                let view = skp::order::SortedView::with_candidates(s, candidates);
                let mut cap = s.viewing();
                let mut items = Vec::new();
                for j in 0..view.m() {
                    if view.r(j) <= cap {
                        cap -= view.r(j);
                        items.push(view.id(j));
                    }
                }
                PrefetchPlan::new(items).expect("unique")
            }
            PolicyKind::SkpPaper => skp::solve_paper_candidates(s, candidates).plan,
            PolicyKind::SkpExact => skp::solve_exact_candidates(s, candidates).plan,
            PolicyKind::SkpOptimal => skp::brute::solve_optimal_candidates(s, candidates).plan,
        }
    }

    fn is_oracle(&self) -> bool {
        matches!(self, PolicyKind::Perfect)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gain::gain_empty_cache;

    fn sc() -> Scenario {
        Scenario::new(
            vec![0.3, 0.25, 0.2, 0.15, 0.1],
            vec![7.0, 4.0, 12.0, 2.0, 9.0],
            11.0,
        )
        .unwrap()
    }

    #[test]
    fn names_are_distinct() {
        let kinds = [
            PolicyKind::NoPrefetch,
            PolicyKind::Kp,
            PolicyKind::KpGreedy,
            PolicyKind::SkpPaper,
            PolicyKind::SkpExact,
            PolicyKind::SkpOptimal,
            PolicyKind::Perfect,
        ];
        let names: std::collections::HashSet<&str> = kinds.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), kinds.len());
    }

    #[test]
    fn no_prefetch_plans_nothing() {
        assert!(PolicyKind::NoPrefetch.plan(&sc()).is_empty());
    }

    #[test]
    fn perfect_oracle_prefetches_the_request() {
        let p = PolicyKind::plan_oracle(&sc(), 3);
        assert_eq!(p.items(), &[3]);
        assert!(PolicyKind::Perfect.plan(&sc()).is_empty());
    }

    #[test]
    fn kp_never_stretches() {
        let s = sc();
        let p = PolicyKind::Kp.plan(&s);
        assert!(p.total_retrieval(&s) <= s.viewing() + 1e-9);
        let p = PolicyKind::KpGreedy.plan(&s);
        assert!(p.total_retrieval(&s) <= s.viewing() + 1e-9);
    }

    #[test]
    fn skp_gains_ordered_by_solver_strength() {
        let s = sc();
        let g_paper = gain_empty_cache(&s, PolicyKind::SkpPaper.plan(&s).items());
        let g_exact = gain_empty_cache(&s, PolicyKind::SkpExact.plan(&s).items());
        let g_opt = gain_empty_cache(&s, PolicyKind::SkpOptimal.plan(&s).items());
        assert!(g_exact >= g_paper - 1e-9);
        assert!(g_opt >= g_exact - 1e-9);
    }

    #[test]
    fn skp_dominates_kp_in_expectation() {
        // KP's solution is feasible for SKP, so the exact SKP gain
        // dominates the KP profit.
        let s = sc();
        let g_kp = gain_empty_cache(&s, PolicyKind::Kp.plan(&s).items());
        let g_skp = gain_empty_cache(&s, PolicyKind::SkpOptimal.plan(&s).items());
        assert!(g_skp >= g_kp - 1e-9);
    }

    #[test]
    fn candidate_mask_respected_by_all() {
        let s = sc();
        let mask = vec![true, false, true, false, true];
        for k in PolicyKind::SOLVERS {
            let p = k.plan_candidates(&s, &mask);
            assert!(
                !p.contains(1) && !p.contains(3),
                "{} violated the mask: {:?}",
                k.name(),
                p
            );
        }
    }
}
