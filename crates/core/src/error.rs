//! Validation errors for model construction.

use std::fmt;

/// Errors raised when constructing or manipulating model objects.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// The probability and retrieval-time vectors have different lengths.
    LengthMismatch {
        /// Number of probabilities supplied.
        probs: usize,
        /// Number of retrieval times supplied.
        retrievals: usize,
    },
    /// A probability is negative, NaN, or greater than one.
    BadProbability {
        /// Index of the offending item.
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// The probabilities sum to more than one (beyond tolerance).
    MassExceedsOne {
        /// The total probability mass.
        total: f64,
    },
    /// A retrieval time is non-positive or NaN.
    BadRetrievalTime {
        /// Index of the offending item.
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// The viewing time is negative or NaN.
    BadViewingTime {
        /// The offending value.
        value: f64,
    },
    /// An item id is out of range for the scenario.
    UnknownItem {
        /// The offending id.
        id: usize,
        /// Number of items in the scenario.
        n: usize,
    },
    /// A prefetch plan references the same item twice.
    DuplicateItem {
        /// The duplicated id.
        id: usize,
    },
    /// A plan's prefix (all but the last item) does not fit in the viewing
    /// time, violating construction (1) of the paper.
    InadmissiblePlan {
        /// Total retrieval time of the prefix.
        prefix_time: f64,
        /// The viewing time it must stay strictly under.
        viewing: f64,
    },
    /// An item size is non-positive or NaN (unequal-size extension).
    BadSize {
        /// Index of the offending item.
        index: usize,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::LengthMismatch { probs, retrievals } => write!(
                f,
                "probability vector has {probs} entries but retrieval vector has {retrievals}"
            ),
            ModelError::BadProbability { index, value } => {
                write!(f, "item {index} has invalid probability {value}")
            }
            ModelError::MassExceedsOne { total } => {
                write!(f, "probabilities sum to {total} > 1")
            }
            ModelError::BadRetrievalTime { index, value } => {
                write!(f, "item {index} has invalid retrieval time {value}")
            }
            ModelError::BadViewingTime { value } => {
                write!(f, "invalid viewing time {value}")
            }
            ModelError::UnknownItem { id, n } => {
                write!(f, "item id {id} out of range for scenario with {n} items")
            }
            ModelError::DuplicateItem { id } => {
                write!(f, "item {id} appears more than once in the plan")
            }
            ModelError::InadmissiblePlan {
                prefix_time,
                viewing,
            } => write!(
                f,
                "plan prefix takes {prefix_time} which is not strictly less than viewing time {viewing}"
            ),
            ModelError::BadSize { index, value } => {
                write!(f, "item {index} has invalid size {value}")
            }
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ModelError::BadProbability {
            index: 3,
            value: -0.5,
        };
        let s = e.to_string();
        assert!(s.contains('3') && s.contains("-0.5"));

        let e = ModelError::LengthMismatch {
            probs: 2,
            retrievals: 5,
        };
        assert!(e.to_string().contains('2'));

        let e = ModelError::MassExceedsOne { total: 1.5 };
        assert!(e.to_string().contains("1.5"));

        let e = ModelError::UnknownItem { id: 9, n: 3 };
        assert!(e.to_string().contains('9'));

        let e = ModelError::InadmissiblePlan {
            prefix_time: 12.0,
            viewing: 10.0,
        };
        assert!(e.to_string().contains("12"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            ModelError::DuplicateItem { id: 1 },
            ModelError::DuplicateItem { id: 1 }
        );
        assert_ne!(
            ModelError::DuplicateItem { id: 1 },
            ModelError::DuplicateItem { id: 2 }
        );
    }
}
