//! Exact **global** SKP solver in pseudo-polynomial time.
//!
//! The canonical branch-and-bound (Theorem 1) can miss the true optimum
//! when the minimum-probability item of the optimal subset cannot
//! feasibly go last, and the exhaustive oracle ([`crate::skp::brute`])
//! costs `O(2^n)`. For the paper's integral workloads (`r`, `v` integers)
//! this module finds the global optimum in `O(n² · v · f)` instead, where
//! `f` is the Pareto-front width:
//!
//! - the best **non-stretching** plan is a plain 0/1 knapsack
//!   ([`crate::kp::dp`]);
//! - for a **stretching** plan `K ⧺ ⟨z⟩`, fix the stretch item `z` and
//!   the prefix weight `w = Σ_K r < v`. The gain
//!   `g = A + st·B + P_z r_z − st` (with `A = Σ_K P r`, `B = Σ_K P`,
//!   `st = w + r_z − v`) is increasing in both `A` and `B`, so only
//!   `(A, B)`-Pareto-optimal prefixes matter. A layered dynamic program
//!   over exact weights maintains those fronts per `w`; one DP per
//!   choice of `z` suffices.

use crate::gain::gain_empty_cache;
use crate::plan::PrefetchPlan;
use crate::scenario::{ItemId, Scenario};
use crate::skp::order::SortedView;
use crate::skp::SkpSolution;

/// Guard: refuse instances whose DP table would be enormous.
pub const MAX_GLOBAL_ITEMS: usize = 64;
/// Guard on the integer viewing time.
pub const MAX_GLOBAL_CAPACITY: usize = 4096;

const EPS: f64 = 1e-9;

/// A maximal set of non-dominated `(A, B)` pairs (both maximised).
#[derive(Debug, Clone, Default, PartialEq)]
struct ParetoFront {
    /// Sorted by `A` descending; `B` then strictly increasing.
    points: Vec<(f64, f64)>,
}

impl ParetoFront {
    fn singleton(a: f64, b: f64) -> Self {
        Self {
            points: vec![(a, b)],
        }
    }

    /// Inserts a point, keeping only non-dominated ones.
    fn add(&mut self, a: f64, b: f64) {
        // Dominated by an existing point?
        if self
            .points
            .iter()
            .any(|&(pa, pb)| pa >= a - EPS && pb >= b - EPS)
        {
            return;
        }
        // Remove points the newcomer dominates.
        self.points
            .retain(|&(pa, pb)| !(a >= pa - EPS && b >= pb - EPS));
        let pos = self.points.partition_point(|&(pa, _)| pa > a);
        self.points.insert(pos, (a, b));
    }

    fn merge_from(&mut self, other: &ParetoFront) {
        for &(a, b) in &other.points {
            self.add(a, b);
        }
    }

    /// Same front shifted by an item's contribution.
    fn shifted(&self, da: f64, db: f64) -> ParetoFront {
        ParetoFront {
            points: self.points.iter().map(|&(a, b)| (a + da, b + db)).collect(),
        }
    }

    fn contains_approx(&self, a: f64, b: f64) -> bool {
        self.points
            .iter()
            .any(|&(pa, pb)| (pa - a).abs() < 1e-6 && (pb - b).abs() < 1e-6)
    }
}

/// One DP layer: a front per exact prefix weight.
type Layer = Vec<Option<ParetoFront>>;

/// Cheap applicability check for [`solve_global`]: `true` exactly when
/// the instance passes the integrality and size guards (the DP itself
/// is not run, so this is `O(n)`).
pub fn global_applicable(s: &Scenario) -> bool {
    if s.n() == 0 {
        return true;
    }
    if s.n() > MAX_GLOBAL_ITEMS {
        return false;
    }
    let Some(v_int) = to_int(s.viewing()) else {
        return false;
    };
    if v_int > MAX_GLOBAL_CAPACITY {
        return false;
    }
    s.retrievals()
        .iter()
        .all(|&r| matches!(to_int(r), Some(w) if w > 0))
}

/// Exact global SKP optimum for integral instances.
///
/// Returns `None` when a retrieval time or the viewing time is not an
/// integer (within `1e-9`), or when the instance exceeds the size guards
/// (i.e. exactly when [`global_applicable`] is false).
/// The result's gain equals [`crate::skp::brute::solve_optimal`]'s on any
/// instance both can solve, at a fraction of the cost for larger `n`.
pub fn solve_global(s: &Scenario) -> Option<SkpSolution> {
    let n = s.n();
    if n == 0 {
        return Some(SkpSolution::empty());
    }
    if n > MAX_GLOBAL_ITEMS {
        return None;
    }
    let v_int = to_int(s.viewing())?;
    if v_int > MAX_GLOBAL_CAPACITY {
        return None;
    }
    let weights: Option<Vec<usize>> = s.retrievals().iter().map(|&r| to_int(r)).collect();
    let weights = weights?;
    if weights.contains(&0) {
        return None; // retrieval times are validated positive; 0 means a rounding surprise
    }

    // Non-stretching candidate: the 0/1-knapsack optimum.
    let kp = crate::kp::dp::solve_kp_dp(s)?;
    let mut best_items: Vec<ItemId> = kp.plan.into_items();
    let mut best_gain = kp.profit;

    // Prefix weights must satisfy Σ_K r < v strictly; w = 0 is always
    // admissible (an empty prefix).
    let max_w = v_int.saturating_sub(1);
    let view = SortedView::new(s);

    for z_pos in 0..n {
        let z = view.id(z_pos);
        let r_z = s.retrieval(z);
        // A stretching plan needs st = w + r_z − v > 0 for some w ≤ max_w;
        // the largest available w is min(max_w, Σ r). Quick reject when
        // even the heaviest prefix cannot stretch... every w works if
        // r_z > v. Iterate anyway; the DP is shared across w.
        let layers = pareto_layers(s, &view, z_pos, max_w);
        let last = layers.last().expect("at least the base layer");
        for (w, front) in last.iter().enumerate() {
            let Some(front) = front else { continue };
            let st = w as f64 + r_z - s.viewing();
            if st <= 0.0 {
                continue; // non-stretching: the KP branch covers it
            }
            for &(a, b) in &front.points {
                let g = a + s.delay_profit(z) - (1.0 - b) * st;
                if g > best_gain + EPS {
                    // Reconstruct K from the layer stack, then append z.
                    let mut items = reconstruct(s, &view, z_pos, &layers, w, a, b);
                    s.sort_canonical(&mut items);
                    items.push(z);
                    best_gain = g;
                    best_items = items;
                }
            }
        }
    }

    let gain = gain_empty_cache(s, &best_items);
    debug_assert!(
        (gain - best_gain).abs() < 1e-6,
        "reconstruction mismatch: {gain} vs {best_gain}"
    );
    Some(SkpSolution {
        plan: PrefetchPlan::new(best_items).expect("unique"),
        gain,
        internal_gain: best_gain,
        nodes: 0,
    })
}

/// Layered Pareto DP over all items except the one at `skip_pos`
/// (positions refer to the canonical view). `layers[k][w]` is the front
/// over the first `k` non-skipped items at exact weight `w`.
fn pareto_layers(s: &Scenario, view: &SortedView, skip_pos: usize, max_w: usize) -> Vec<Layer> {
    let mut base: Layer = vec![None; max_w + 1];
    base[0] = Some(ParetoFront::singleton(0.0, 0.0));
    let mut layers = vec![base];

    for pos in 0..view.m() {
        if pos == skip_pos {
            continue;
        }
        let id = view.id(pos);
        let w_i = s.retrieval(id).round() as usize;
        let (da, db) = (s.delay_profit(id), s.prob(id));
        let prev = layers.last().expect("non-empty");
        let mut next = prev.clone();
        if w_i <= max_w {
            for w in (w_i..=max_w).rev() {
                if let Some(src) = prev[w - w_i].as_ref() {
                    let shifted = src.shifted(da, db);
                    match next[w].as_mut() {
                        Some(front) => front.merge_from(&shifted),
                        None => next[w] = Some(shifted),
                    }
                }
            }
        }
        layers.push(next);
    }
    layers
}

/// Walks the layer stack backwards to find a prefix subset realising the
/// Pareto point `(a, b)` at weight `w`.
fn reconstruct(
    s: &Scenario,
    view: &SortedView,
    skip_pos: usize,
    layers: &[Layer],
    mut w: usize,
    mut a: f64,
    mut b: f64,
) -> Vec<ItemId> {
    // Item positions in the order the DP consumed them.
    let consumed: Vec<usize> = (0..view.m()).filter(|&p| p != skip_pos).collect();
    debug_assert_eq!(layers.len(), consumed.len() + 1);
    let mut items = Vec::new();
    for (k, &pos) in consumed.iter().enumerate().rev() {
        let prev = &layers[k];
        // If the point already exists without this item, skip the item.
        if prev[w].as_ref().is_some_and(|f| f.contains_approx(a, b)) {
            continue;
        }
        let id = view.id(pos);
        let w_i = s.retrieval(id).round() as usize;
        debug_assert!(w >= w_i, "reconstruction underflow");
        w -= w_i;
        a -= s.delay_profit(id);
        b -= s.prob(id);
        items.push(id);
    }
    items
}

fn to_int(x: f64) -> Option<usize> {
    if !(0.0..=u32::MAX as f64).contains(&x) {
        return None;
    }
    let r = x.round();
    ((x - r).abs() < 1e-9).then_some(r as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skp::{solve_exact, solve_optimal};

    const TOL: f64 = 1e-7;

    fn sc(p: Vec<f64>, r: Vec<f64>, v: f64) -> Scenario {
        Scenario::new(p, r, v).unwrap()
    }

    #[test]
    fn matches_brute_oracle_on_known_instances() {
        let cases = [
            sc(vec![0.5, 0.3, 0.2], vec![8.0, 6.0, 9.0], 10.0),
            sc(vec![0.5, 0.3, 0.2], vec![10.0, 2.0, 50.0], 5.0),
            sc(
                vec![0.3, 0.25, 0.2, 0.15, 0.1],
                vec![7.0, 4.0, 12.0, 2.0, 9.0],
                11.0,
            ),
            sc(
                vec![0.3, 0.3, 0.2, 0.1, 0.05, 0.05],
                vec![14.0, 5.0, 9.0, 6.0, 2.0, 30.0],
                16.0,
            ),
        ];
        for s in cases {
            let global = solve_global(&s).expect("integral instance");
            let brute = solve_optimal(&s);
            assert!(
                (global.gain - brute.gain).abs() < TOL,
                "global {} vs brute {}",
                global.gain,
                brute.gain
            );
        }
    }

    #[test]
    fn finds_the_non_canonical_optimum() {
        // The Theorem-1 feasibility-gap counterexample: global must find
        // ⟨1, 0⟩ at gain 0.7 where the canonical solver stops at 0.6.
        let s = sc(vec![0.5, 0.3, 0.2], vec![10.0, 2.0, 50.0], 5.0);
        let global = solve_global(&s).unwrap();
        assert!((global.gain - 0.7).abs() < TOL);
        assert_eq!(global.plan.items(), &[1, 0]);
        assert!(solve_exact(&s).gain < global.gain - 0.05);
    }

    #[test]
    fn rejects_fractional_inputs() {
        assert!(solve_global(&sc(vec![1.0], vec![1.5], 10.0)).is_none());
        assert!(solve_global(&sc(vec![1.0], vec![2.0], 10.5)).is_none());
    }

    #[test]
    fn empty_and_zero_viewing() {
        let s = Scenario::new(vec![], vec![], 5.0).unwrap();
        assert!(solve_global(&s).unwrap().plan.is_empty());
        // v = 0: only single-item stretching plans exist (empty prefix).
        let s = sc(vec![0.9, 0.1], vec![3.0, 5.0], 0.0);
        let g = solve_global(&s).unwrap();
        let b = solve_optimal(&s);
        assert!((g.gain - b.gain).abs() < TOL);
    }

    #[test]
    fn plan_is_admissible_and_gain_consistent() {
        let s = sc(
            vec![0.25, 0.2, 0.2, 0.15, 0.1, 0.1],
            vec![4.0, 9.0, 2.0, 7.0, 3.0, 11.0],
            12.0,
        );
        let g = solve_global(&s).unwrap();
        assert!(PrefetchPlan::admissible(g.plan.items().to_vec(), &s).is_ok());
        assert!((gain_empty_cache(&s, g.plan.items()) - g.gain).abs() < TOL);
    }

    #[test]
    fn randomised_agreement_with_brute() {
        // 300 random integral instances, n = 10: global == brute.
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(4242);
        for _ in 0..300 {
            let n = rng.random_range(1..=10);
            let weights: Vec<f64> = (0..n)
                .map(|_| rng.random_range(1u32..=100) as f64)
                .collect();
            let sum: f64 = weights.iter().sum();
            let probs: Vec<f64> = weights.iter().map(|w| w / sum).collect();
            let retr: Vec<f64> = (0..n).map(|_| rng.random_range(1u32..=30) as f64).collect();
            let v = rng.random_range(0u32..=50) as f64;
            let s = Scenario::new(probs, retr, v).unwrap();
            let g = solve_global(&s).expect("integral");
            let b = solve_optimal(&s);
            assert!(
                (g.gain - b.gain).abs() < TOL,
                "n={n} v={v}: global {} vs brute {} (plans {:?} vs {:?})",
                g.gain,
                b.gain,
                g.plan,
                b.plan
            );
        }
    }

    #[test]
    fn scales_past_brute_force_limits() {
        // n = 40 is far beyond 2^n enumeration; just check it runs and
        // dominates the canonical solver.
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 40;
        let weights: Vec<f64> = (0..n)
            .map(|_| rng.random_range(1u32..=100) as f64)
            .collect();
        let sum: f64 = weights.iter().sum();
        let probs: Vec<f64> = weights.iter().map(|w| w / sum).collect();
        let retr: Vec<f64> = (0..n).map(|_| rng.random_range(1u32..=30) as f64).collect();
        let s = Scenario::new(probs, retr, 40.0).unwrap();
        let g = solve_global(&s).expect("integral");
        assert!(g.gain >= solve_exact(&s).gain - TOL);
    }

    #[test]
    fn pareto_front_dominance() {
        let mut f = ParetoFront::default();
        f.add(1.0, 1.0);
        f.add(2.0, 0.5); // incomparable: kept
        f.add(1.5, 0.7); // dominated by neither? (1.5 < 2.0, 0.7 > 0.5; 1.5 > 1.0... dominated by (1.0, 1.0)? A smaller... no: 1.5 > 1.0 and 0.7 < 1.0 -> incomparable)
        assert_eq!(f.points.len(), 3);
        f.add(0.5, 0.5); // dominated by (1.0, 1.0): dropped
        assert_eq!(f.points.len(), 3);
        f.add(3.0, 2.0); // dominates everything
        assert_eq!(f.points.len(), 1);
        assert_eq!(f.points[0], (3.0, 2.0));
    }
}
