//! Canonical-order branch-and-bound with **corrected** Theorem-3
//! bookkeeping.
//!
//! Identical search to the paper's Figure 3, but the incremental gain of a
//! stretch insertion uses the true uncovered probability mass
//! `1 − Σ_{i∈K} P_i` (Theorem 3) instead of the suffix mass `Σ_{i≥j} P_i`
//! printed in the pseudocode. The two coincide until a backtrack excludes
//! an item before position `j`; from then on the verbatim rule
//! under-prices the stretch penalty. This solver is exact over the
//! canonical search space of Theorem 1 (subsets of the canonical order
//! with the minimum-probability selected item last).
//!
//! Note: the *global* SKP optimum can occasionally live outside that space
//! — when the minimum-probability item of the optimal subset cannot
//! feasibly go last (its retrieval time does not exceed the stretch), the
//! optimal order ends on a different item. Theorem 1's swap argument
//! ignores that feasibility constraint. [`crate::skp::brute`] searches the
//! full space and is the ground-truth oracle in tests; the experiments in
//! `EXPERIMENTS.md` quantify how rarely the spaces differ.

use crate::scenario::Scenario;
use crate::skp::order::SortedView;
use crate::skp::paper::finish;
use crate::skp::SkpSolution;

/// Solves SKP over all items with corrected incremental bookkeeping.
pub fn solve_exact(s: &Scenario) -> SkpSolution {
    let view = SortedView::new(s);
    solve_on_view(s, &view)
}

/// Corrected solver over a pre-sorted candidate view.
///
/// The stretch penalty is priced against the full uncovered mass
/// `1 − Σ_{i∈K} P_i`, where the total mass is taken as 1 even when the view
/// covers only part of it (probability outside the view also waits out the
/// stretch; see the Section-5 derivation).
pub fn solve_on_view(s: &Scenario, view: &SortedView) -> SkpSolution {
    let profits: Vec<f64> = (0..view.m()).map(|j| view.profit(j)).collect();
    solve_generalized(s, view, &profits, 0.0)
}

/// Generalised corrected branch-and-bound used by the exact solver and the
/// extension objectives of [`crate::ext`].
///
/// Maximises `Σ_{i∈F} profit_i − (1 − Σ_{i∈K} P_i + λ) · st(F)` over the
/// canonical search space, where `profits[j]` is the value of the item at
/// sorted position `j` and `λ ≥ 0` is an extra per-unit stretch penalty
/// (the lookahead extension's shadow price for intruding into the next
/// viewing window; `λ = 0` recovers plain SKP).
///
/// Requirements for the bound to stay admissible: `profits[j] ≤ P_j·r_j`
/// element-wise (the default and every extension objective satisfy this)
/// and profits must be non-increasing in density `profits[j]/r_j` along the
/// view order — true for canonical order whenever the density is a
/// monotone transform of `P_j`.
pub fn solve_generalized(
    s: &Scenario,
    view: &SortedView,
    profits: &[f64],
    lambda: f64,
) -> SkpSolution {
    let m = view.m();
    assert_eq!(profits.len(), m, "one profit per candidate");
    if m == 0 {
        return SkpSolution::empty();
    }

    // Suffix Dantzig bound over the generalised profits (items with
    // non-positive profit contribute nothing, so clamp at zero).
    let clamped: Vec<f64> = profits.iter().map(|&p| p.max(0.0)).collect();

    let mut best_x = vec![false; m];
    let mut best_g = 0.0_f64;
    let mut cur_x = vec![false; m];
    let mut cur_g = 0.0_f64;
    let mut included_mass = 0.0_f64; // Σ_{i∈K} P_i over included items
    let mut cap = s.viewing();
    let mut j = 0usize;
    let mut nodes = 0u64;

    'step2: loop {
        let u = dantzig_generalized(view, &clamped, j, cap);
        if best_g >= cur_g + u {
            if !backtrack(
                view,
                profits,
                &mut cur_x,
                &mut cur_g,
                &mut included_mass,
                &mut cap,
                &mut j,
                lambda,
            ) {
                break 'step2;
            }
            continue 'step2;
        }

        while j < m && cap > 0.0 {
            nodes += 1;
            let over = (view.r(j) - cap).max(0.0);
            // Theorem 3: δ = profit_z − (1 − Σ_{i∈K} P_i + λ) · st.
            let delta = profits[j] - (1.0 - included_mass + lambda) * over;
            if delta <= 0.0 {
                cur_x[j] = false;
                j += 1;
                if j < m - 1 {
                    continue 'step2;
                }
            } else {
                cap -= view.r(j);
                cur_g += delta;
                included_mass += view.p(j);
                cur_x[j] = true;
                j += 1;
            }
        }

        if cur_g > best_g {
            best_g = cur_g;
            best_x.copy_from_slice(&cur_x);
        }

        if !backtrack(
            view,
            profits,
            &mut cur_x,
            &mut cur_g,
            &mut included_mass,
            &mut cap,
            &mut j,
            lambda,
        ) {
            break 'step2;
        }
    }

    finish(s, view, &best_x, best_g, nodes)
}

/// Dantzig residual bound over arbitrary (clamped non-negative) profits.
fn dantzig_generalized(view: &SortedView, profits: &[f64], start: usize, capacity: f64) -> f64 {
    if capacity <= 0.0 {
        return 0.0;
    }
    let mut cap = capacity;
    let mut u = 0.0;
    for (j, &profit) in profits
        .iter()
        .enumerate()
        .skip(start)
        .take(view.m() - start)
    {
        if view.r(j) > cap {
            return u + cap * (profit / view.r(j));
        }
        u += profit;
        cap -= view.r(j);
    }
    u
}

#[allow(clippy::too_many_arguments)]
fn backtrack(
    view: &SortedView,
    profits: &[f64],
    cur_x: &mut [bool],
    cur_g: &mut f64,
    included_mass: &mut f64,
    cap: &mut f64,
    j: &mut usize,
    lambda: f64,
) -> bool {
    let Some(k) = (0..*j).rev().find(|&k| cur_x[k]) else {
        return false;
    };
    cur_x[k] = false;
    *cap += view.r(k);
    *included_mass -= view.p(k);
    let over = (view.r(k) - *cap).max(0.0);
    let delta = profits[k] - (1.0 - *included_mass + lambda) * over;
    *cur_g -= delta;
    *j = k + 1;
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gain::gain_empty_cache;
    use crate::skp::bound::upper_bound;
    use crate::skp::solve_paper;

    const TOL: f64 = 1e-9;

    fn sc(p: Vec<f64>, r: Vec<f64>, v: f64) -> Scenario {
        Scenario::new(p, r, v).unwrap()
    }

    #[test]
    fn internal_gain_always_equals_true_gain() {
        // The corrected bookkeeping must agree with the closed form on the
        // returned plan — including branches that required backtracking.
        let cases = [
            sc(vec![0.5, 0.3, 0.2], vec![8.0, 6.0, 9.0], 10.0),
            sc(
                vec![0.3, 0.25, 0.2, 0.15, 0.1],
                vec![7.0, 4.0, 12.0, 2.0, 9.0],
                11.0,
            ),
            sc(vec![0.4, 0.3, 0.2, 0.1], vec![10.0, 10.0, 10.0, 10.0], 15.0),
        ];
        for s in cases {
            let sol = solve_exact(&s);
            assert!(
                (sol.internal_gain - sol.gain).abs() < TOL,
                "internal {} vs true {}",
                sol.internal_gain,
                sol.gain
            );
        }
    }

    #[test]
    fn matches_paper_solver_when_no_exclusions_occur() {
        // With ample capacity the greedy forward pass includes everything
        // and the two bookkeepings coincide.
        let s = sc(vec![0.5, 0.3, 0.2], vec![2.0, 3.0, 4.0], 100.0);
        let a = solve_exact(&s);
        let b = solve_paper(&s);
        assert!((a.gain - b.gain).abs() < TOL);
        assert_eq!(a.plan.items(), b.plan.items());
    }

    #[test]
    fn paper_suffix_mass_bug_reproduced() {
        // On (P, r, v) = ((.5,.3,.2), (8,6,9), 10) the verbatim Figure-3
        // rule prices item 2's stretch with suffix mass 0.2 instead of the
        // true uncovered mass 0.5 (item 1 was excluded, not included), so
        // it adds item 2 for an *internal* gain of 4.4 while the plan's
        // true gain is only 2.3; the corrected solver keeps {0} at 4.0.
        // This very mispricing is visible in the paper's own Figure 5a,
        // where SKP prefetch dips below "no prefetch" at small v.
        let s = sc(vec![0.5, 0.3, 0.2], vec![8.0, 6.0, 9.0], 10.0);
        let paper = solve_paper(&s);
        let exact = solve_exact(&s);
        assert_eq!(paper.plan.items(), &[0, 2]);
        assert!((paper.internal_gain - 4.4).abs() < TOL);
        assert!((paper.gain - 2.3).abs() < TOL);
        assert_eq!(exact.plan.items(), &[0]);
        assert!((exact.gain - 4.0).abs() < TOL);
    }

    #[test]
    fn never_worse_than_paper_solver() {
        // The corrected solver maximises the true objective over the same
        // space, so its true gain dominates the paper solver's true gain.
        let cases = [
            sc(
                vec![0.35, 0.25, 0.2, 0.1, 0.1],
                vec![9.0, 8.0, 11.0, 3.0, 2.0],
                12.0,
            ),
            sc(
                vec![0.3, 0.3, 0.2, 0.1, 0.05, 0.05],
                vec![14.0, 5.0, 9.0, 6.0, 2.0, 30.0],
                16.0,
            ),
        ];
        for s in cases {
            let a = solve_exact(&s);
            let b = solve_paper(&s);
            assert!(
                a.gain >= b.gain - TOL,
                "exact {} < paper {}",
                a.gain,
                b.gain
            );
        }
    }

    #[test]
    fn respects_upper_bound() {
        let s = sc(
            vec![0.3, 0.25, 0.2, 0.15, 0.1],
            vec![7.0, 4.0, 12.0, 2.0, 9.0],
            11.0,
        );
        let sol = solve_exact(&s);
        assert!(sol.gain <= upper_bound(&s) + TOL);
        assert!(sol.gain >= 0.0 - TOL);
    }

    #[test]
    fn empty_and_singleton() {
        let s = Scenario::new(vec![], vec![], 4.0).unwrap();
        assert!(solve_exact(&s).plan.is_empty());
        let s = sc(vec![1.0], vec![2.0], 4.0);
        assert_eq!(solve_exact(&s).plan.items(), &[0]);
    }

    #[test]
    fn gain_formula_cross_check() {
        let s = sc(
            vec![0.25, 0.2, 0.2, 0.15, 0.1, 0.1],
            vec![4.0, 9.0, 2.0, 7.0, 3.0, 11.0],
            12.0,
        );
        let sol = solve_exact(&s);
        let g = gain_empty_cache(&s, sol.plan.items());
        assert!((g - sol.gain).abs() < TOL);
    }
}
