//! The SKP branch-and-bound algorithm of the paper's **Figure 3**,
//! implemented verbatim (a Horowitz–Sahni-style depth-first search with
//! Dantzig bounds, extended with the stretch move of Theorem 3).
//!
//! The pseudocode's `goto`s are realised as a small state machine. One
//! fidelity note (documented in DESIGN.md §4.5): step 3 prices the stretch
//! penalty of inserting item `j` with the *suffix* mass `Σ_{i≥j} P_i`.
//! After a backtrack has excluded an earlier item `e < j`, the true
//! uncovered mass `1 − Σ_{i∈K} P_i` also contains `P_e`, so the verbatim
//! algorithm can overestimate the incremental gain on such branches. The
//! corrected bookkeeping lives in [`crate::skp::exact`]; the returned
//! [`SkpSolution::gain`] is always the true closed-form value.

use crate::gain::gain_empty_cache;
use crate::plan::PrefetchPlan;
use crate::scenario::Scenario;
use crate::skp::bound::dantzig_residual;
use crate::skp::order::SortedView;
use crate::skp::SkpSolution;

/// Solves SKP with the verbatim Figure-3 algorithm over all items.
pub fn solve_paper(s: &Scenario) -> SkpSolution {
    let view = SortedView::new(s);
    solve_on_view(s, &view)
}

/// Figure-3 solver over a pre-sorted candidate view.
pub fn solve_on_view(s: &Scenario, view: &SortedView) -> SkpSolution {
    let m = view.m();
    if m == 0 {
        return SkpSolution::empty();
    }

    // Step 1: initialisation.
    let mut best_x = vec![false; m]; // x: best item selectors
    let mut best_g = 0.0_f64; // g: gain of best solution
    let mut cur_x = vec![false; m]; // x̂: current item selectors
    let mut cur_g = 0.0_f64; // ĝ: gain of current solution
    let mut cap = s.viewing(); // v̂: current residual capacity
    let mut j = 0usize;
    let mut nodes = 0u64;

    'step2: loop {
        // Step 2: compute the upper bound of the current branch.
        let u = dantzig_residual(view, j, cap);
        if best_g >= cur_g + u {
            // Bound cannot beat the incumbent: backtrack.
            if !backtrack(view, &mut cur_x, &mut cur_g, &mut cap, &mut j) {
                break 'step2;
            }
            continue 'step2;
        }

        // Step 3: forward steps.
        while j < m && cap > 0.0 {
            nodes += 1;
            let over = (view.r(j) - cap).max(0.0);
            // Verbatim: δ := P_j r_j − (Σ_{i=j}^{n} P_i) · max{0, r_j − v̂}.
            let delta = view.profit(j) - view.suffix_p(j) * over;
            if delta <= 0.0 {
                cur_x[j] = false;
                j += 1;
                if j < m - 1 {
                    // "if j < n then goto 2": recompute the bound.
                    continue 'step2;
                }
            } else {
                cap -= view.r(j);
                cur_g += delta;
                cur_x[j] = true;
                j += 1;
            }
        }

        // Step 4: update the best solution.
        if cur_g > best_g {
            best_g = cur_g;
            best_x.copy_from_slice(&cur_x);
        }

        // Step 5: backtrack.
        if !backtrack(view, &mut cur_x, &mut cur_g, &mut cap, &mut j) {
            break 'step2;
        }
    }

    // Step 6: assemble the final solution.
    finish(s, view, &best_x, best_g, nodes)
}

/// Step 5 of Figure 3: remove the last inserted item. Returns `false` when
/// no inserted item remains (search exhausted).
fn backtrack(
    view: &SortedView,
    cur_x: &mut [bool],
    cur_g: &mut f64,
    cap: &mut f64,
    j: &mut usize,
) -> bool {
    let Some(k) = (0..*j).rev().find(|&k| cur_x[k]) else {
        return false;
    };
    cur_x[k] = false;
    *cap += view.r(k);
    let over = (view.r(k) - *cap).max(0.0);
    let delta = view.profit(k) - view.suffix_p(k) * over;
    *cur_g -= delta;
    *j = k + 1;
    true
}

/// Builds the [`SkpSolution`], recomputing the true closed-form gain.
pub(crate) fn finish(
    s: &Scenario,
    view: &SortedView,
    best_x: &[bool],
    internal_gain: f64,
    nodes: u64,
) -> SkpSolution {
    let items = view.selectors_to_items(best_x);
    let gain = gain_empty_cache(s, &items);
    SkpSolution {
        plan: PrefetchPlan::new(items).expect("selector items are unique"),
        gain,
        internal_gain,
        nodes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gain;
    use crate::skp::bound::upper_bound;

    const TOL: f64 = 1e-9;

    fn sc(p: Vec<f64>, r: Vec<f64>, v: f64) -> Scenario {
        Scenario::new(p, r, v).unwrap()
    }

    #[test]
    fn picks_everything_when_all_fit() {
        let s = sc(vec![0.5, 0.3, 0.2], vec![2.0, 3.0, 4.0], 100.0);
        let sol = solve_paper(&s);
        assert_eq!(sol.plan.len(), 3);
        assert!((sol.gain - s.expected_no_prefetch()).abs() < TOL);
    }

    #[test]
    fn prefers_high_probability_items() {
        // Only one of the two items fits.
        let s = sc(vec![0.8, 0.2], vec![5.0, 5.0], 5.0);
        let sol = solve_paper(&s);
        assert_eq!(sol.plan.items(), &[0]);
        assert!((sol.gain - 0.8 * 5.0).abs() < TOL);
    }

    #[test]
    fn uses_stretch_when_profitable() {
        // Item 0 fits; adding item 1 stretches by 2 but its profit
        // 0.45*6=2.7 exceeds the penalty (1-0.5)*2 = 1.0.
        let s = sc(vec![0.5, 0.45, 0.05], vec![6.0, 6.0, 1.0], 10.0);
        let sol = solve_paper(&s);
        assert!(sol.plan.contains(0) && sol.plan.contains(1));
        let g_manual = gain::gain_empty_cache(&s, sol.plan.items());
        assert!((sol.gain - g_manual).abs() < TOL);
        assert!(sol.gain > 0.5 * 6.0); // better than item 0 alone
    }

    #[test]
    fn avoids_stretch_when_penalty_dominates() {
        // Item 1 (P=0.3, r=30) would stretch by 26 while 0.4 of the mass
        // still pays the penalty: δ = 9 − 0.4·26 < 0, so it is skipped and
        // the cheap item 2 is taken instead.
        let s = sc(vec![0.6, 0.3, 0.1], vec![5.0, 30.0, 3.0], 9.0);
        let sol = solve_paper(&s);
        assert!(!sol.plan.contains(1), "plan {:?}", sol.plan);
        assert!(sol.plan.contains(0) && sol.plan.contains(2));
    }

    #[test]
    fn gain_never_negative_and_bounded() {
        // Figure-3 keeps the empty plan as incumbent, so it never returns a
        // solution its own accounting thinks is losing; the true gain must
        // also respect the Eq. 7 bound.
        let s = sc(
            vec![0.3, 0.25, 0.2, 0.15, 0.1],
            vec![7.0, 4.0, 12.0, 2.0, 9.0],
            11.0,
        );
        let sol = solve_paper(&s);
        assert!(sol.gain >= -TOL);
        assert!(sol.gain <= upper_bound(&s) + TOL);
    }

    #[test]
    fn zero_viewing_time_may_still_stretch_profitably() {
        // v = 0: any prefetch stretches. A near-certain item is still worth
        // prefetching: g = P r − st = P r − r > 0 iff ... P=1: g = 0... use
        // P = 1 for a deterministic request: g = r − r = 0, so the solver
        // is indifferent; it must not return a *negative* plan.
        let s = sc(vec![1.0], vec![5.0], 0.0);
        let sol = solve_paper(&s);
        assert!(sol.gain >= -TOL);
    }

    #[test]
    fn deterministic_request_prefetched_whole() {
        // P = (1, 0); the certain item doesn't fit fully but stretching is
        // free (penalty mass after including it... K = ∅ so penalty = 1·st,
        // profit = r): g = r − st = v. Prefetching must beat nothing.
        let s = sc(vec![1.0, 0.0], vec![8.0, 3.0], 5.0);
        let sol = solve_paper(&s);
        assert!(sol.plan.contains(0));
        assert!((sol.gain - 5.0).abs() < TOL);
    }

    #[test]
    fn plan_is_admissible_construction_1() {
        let s = sc(
            vec![0.25, 0.2, 0.2, 0.15, 0.1, 0.1],
            vec![4.0, 9.0, 2.0, 7.0, 3.0, 11.0],
            12.0,
        );
        let sol = solve_paper(&s);
        // The prefix of the returned plan must fit strictly within v.
        assert!(PrefetchPlan::admissible(sol.plan.items().to_vec(), &s).is_ok());
    }

    #[test]
    fn single_item_scenarios() {
        let s = sc(vec![1.0], vec![3.0], 10.0);
        let sol = solve_paper(&s);
        assert_eq!(sol.plan.items(), &[0]);
        assert!((sol.gain - 3.0).abs() < TOL);
    }

    #[test]
    fn empty_scenario() {
        let s = Scenario::new(vec![], vec![], 5.0).unwrap();
        let sol = solve_paper(&s);
        assert!(sol.plan.is_empty());
    }

    #[test]
    fn internal_gain_matches_true_gain_without_backtracked_exclusions() {
        // On scenarios where the greedy forward pass is optimal, the
        // verbatim bookkeeping agrees with the closed form.
        let s = sc(vec![0.5, 0.3, 0.2], vec![2.0, 3.0, 4.0], 100.0);
        let sol = solve_paper(&s);
        assert!((sol.internal_gain - sol.gain).abs() < TOL);
    }

    #[test]
    fn nodes_counted() {
        let s = sc(vec![0.5, 0.3, 0.2], vec![2.0, 3.0, 4.0], 6.0);
        let sol = solve_paper(&s);
        assert!(sol.nodes > 0);
    }
}
