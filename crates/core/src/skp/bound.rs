//! Linear relaxation of SKP (Theorem 2) and the upper bound `U_g` (Eq. 7).
//!
//! Allowing items to be *partially* prefetched yields the linear SKP. By
//! Theorem 2 its optimum is the classic Dantzig solution of the relaxed
//! knapsack: stretch never pays off in the relaxation, so items are taken
//! whole in canonical order until the first item `z̃` that does not fit,
//! which is taken fractionally.

use crate::scenario::Scenario;
use crate::skp::order::SortedView;

/// The solution of the linear (fractional) relaxation of SKP.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearSolution {
    /// Fraction `x_i ∈ [0, 1]` of each item prefetched, indexed by
    /// **original scenario id**.
    pub fractions: Vec<f64>,
    /// Objective value `g̃(x)`, the upper bound `U_g` of Eq. 7.
    pub objective: f64,
    /// Original id of the critical (fractionally prefetched) item `z̃`,
    /// if any item had to be split.
    pub critical: Option<usize>,
}

/// Dantzig-style bound for the residual subproblem starting at sorted
/// position `start` with remaining capacity `capacity` (Figure 3, step 2):
///
/// `U = Σ_{i=start}^{z̃−1} P_i r_i + (capacity − Σ_{i=start}^{z̃−1} r_i) · P_{z̃}`
///
/// with `z̃` the first item that no longer fits. A non-positive capacity
/// yields zero.
pub fn dantzig_residual(view: &SortedView, start: usize, capacity: f64) -> f64 {
    if capacity <= 0.0 {
        return 0.0;
    }
    let mut cap = capacity;
    let mut u = 0.0;
    let mut j = start;
    while j < view.m() {
        if view.r(j) > cap {
            // Fractional share of the critical item (P_{m} treated as 0
            // beyond the end, matching the paper's r_{n+1} = ∞ sentinel).
            return u + cap * view.p(j);
        }
        u += view.profit(j);
        cap -= view.r(j);
        j += 1;
    }
    u
}

/// Solves the linear relaxation of SKP for a whole scenario (Theorem 2)
/// and returns the fractional solution together with the bound.
pub fn linear_relaxation(s: &Scenario) -> LinearSolution {
    let view = SortedView::new(s);
    let mut fractions = vec![0.0; s.n()];
    let mut cap = s.viewing();
    let mut objective = 0.0;
    let mut critical = None;
    for j in 0..view.m() {
        if view.r(j) <= cap {
            fractions[view.id(j)] = 1.0;
            objective += view.profit(j);
            cap -= view.r(j);
        } else {
            let frac = cap / view.r(j);
            if frac > 0.0 {
                fractions[view.id(j)] = frac;
                objective += view.profit(j) * frac;
                critical = Some(view.id(j));
            }
            break;
        }
    }
    LinearSolution {
        fractions,
        objective,
        critical,
    }
}

/// The tight upper bound `U_g` on the SKP optimum (Eq. 7).
pub fn upper_bound(s: &Scenario) -> f64 {
    let view = SortedView::new(s);
    dantzig_residual(&view, 0, s.viewing())
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-9;

    fn s() -> Scenario {
        // canonical order: 0 (0.5, 8), 1 (0.3, 6), 2 (0.2, 9); v = 10
        Scenario::new(vec![0.5, 0.3, 0.2], vec![8.0, 6.0, 9.0], 10.0).unwrap()
    }

    #[test]
    fn relaxation_takes_items_in_order() {
        let lin = linear_relaxation(&s());
        assert!((lin.fractions[0] - 1.0).abs() < TOL);
        // item 1 is critical: capacity left = 2 of r = 6
        assert!((lin.fractions[1] - 2.0 / 6.0).abs() < TOL);
        assert_eq!(lin.fractions[2], 0.0);
        assert_eq!(lin.critical, Some(1));
        let expect = 0.5 * 8.0 + 2.0 * 0.3;
        assert!((lin.objective - expect).abs() < TOL);
    }

    #[test]
    fn bound_equals_relaxation_objective() {
        let sc = s();
        assert!((upper_bound(&sc) - linear_relaxation(&sc).objective).abs() < TOL);
    }

    #[test]
    fn all_items_fit_no_critical() {
        let sc = Scenario::new(vec![0.5, 0.5], vec![2.0, 3.0], 10.0).unwrap();
        let lin = linear_relaxation(&sc);
        assert_eq!(lin.critical, None);
        assert!((lin.objective - (0.5 * 2.0 + 0.5 * 3.0)).abs() < TOL);
    }

    #[test]
    fn zero_viewing_gives_zero_bound() {
        let sc = s().with_viewing(0.0).unwrap();
        assert_eq!(upper_bound(&sc), 0.0);
        let lin = linear_relaxation(&sc);
        assert_eq!(lin.objective, 0.0);
        assert!(lin.fractions.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn residual_bound_negative_capacity_is_zero() {
        let view = SortedView::new(&s());
        assert_eq!(dantzig_residual(&view, 0, -3.0), 0.0);
    }

    #[test]
    fn residual_bound_from_middle() {
        let view = SortedView::new(&s());
        // Starting at sorted position 1 (item 1: P=.3, r=6) with cap 7:
        // take item 1 whole (1.8), then 1 unit of item 2 at density 0.2.
        let u = dantzig_residual(&view, 1, 7.0);
        assert!((u - (1.8 + 0.2)).abs() < TOL);
    }

    #[test]
    fn bound_dominates_any_integral_plan() {
        // Spot-check Theorem 2 / Eq. 7: U_g >= g*(F) for a handful of plans.
        let sc = s();
        let u = upper_bound(&sc);
        for plan in [
            vec![],
            vec![0usize],
            vec![1],
            vec![2],
            vec![0, 1],
            vec![0, 2],
            vec![1, 2],
            vec![1, 0],
        ] {
            let g = crate::gain::gain_empty_cache(&sc, &plan);
            assert!(
                u + TOL >= g,
                "bound {u} must dominate g {g} for plan {plan:?}"
            );
        }
    }

    #[test]
    fn fractions_within_unit_interval() {
        let lin = linear_relaxation(&s());
        assert!(lin
            .fractions
            .iter()
            .all(|&x| (0.0..=1.0 + TOL).contains(&x)));
    }
}
