//! Canonical ordering (Theorem 1) and the sorted working view shared by
//! all SKP solvers.

use crate::scenario::{ItemId, Scenario};

/// A scenario's candidate items sorted into the canonical order of Eq. 5
/// (probability descending, ties broken by retrieval ascending), with the
/// prefix/suffix sums the solvers need.
///
/// Theorem 1 proves that among plans with positive stretch, an optimal one
/// lists items in this order (minimum-probability item last), so the
/// branch-and-bound solvers enumerate subsets of this permutation only.
#[derive(Debug, Clone)]
pub struct SortedView {
    ids: Vec<ItemId>,
    p: Vec<f64>,
    r: Vec<f64>,
    /// `suffix_p[j] = Σ_{i≥j} p[i]`; length `m + 1` with `suffix_p[m] = 0`.
    suffix_p: Vec<f64>,
}

impl SortedView {
    /// Sorted view over every item of the scenario.
    pub fn new(s: &Scenario) -> Self {
        Self::with_candidates_fn(s, |_| true)
    }

    /// Sorted view over the items for which `candidates[i]` is true.
    ///
    /// # Panics
    /// Panics when `candidates.len() != s.n()`.
    pub fn with_candidates(s: &Scenario, candidates: &[bool]) -> Self {
        assert_eq!(
            candidates.len(),
            s.n(),
            "candidate mask length must equal the number of items"
        );
        Self::with_candidates_fn(s, |i| candidates[i])
    }

    /// Sorted view over the items selected by a predicate.
    pub fn with_candidates_fn(s: &Scenario, keep: impl Fn(ItemId) -> bool) -> Self {
        let mut ids: Vec<ItemId> = (0..s.n()).filter(|&i| keep(i)).collect();
        s.sort_canonical(&mut ids);
        let p: Vec<f64> = ids.iter().map(|&i| s.prob(i)).collect();
        let r: Vec<f64> = ids.iter().map(|&i| s.retrieval(i)).collect();
        let m = ids.len();
        let mut suffix_p = vec![0.0; m + 1];
        for j in (0..m).rev() {
            suffix_p[j] = suffix_p[j + 1] + p[j];
        }
        Self {
            ids,
            p,
            r,
            suffix_p,
        }
    }

    /// Number of candidate items in the view.
    #[inline]
    pub fn m(&self) -> usize {
        self.ids.len()
    }

    /// Original scenario id of the item at sorted position `j`.
    #[inline]
    pub fn id(&self, j: usize) -> ItemId {
        self.ids[j]
    }

    /// Probability of the item at sorted position `j`.
    #[inline]
    pub fn p(&self, j: usize) -> f64 {
        self.p[j]
    }

    /// Retrieval time of the item at sorted position `j`.
    #[inline]
    pub fn r(&self, j: usize) -> f64 {
        self.r[j]
    }

    /// Delay profit `P·r` of the item at sorted position `j`.
    #[inline]
    pub fn profit(&self, j: usize) -> f64 {
        self.p[j] * self.r[j]
    }

    /// `Σ_{i≥j} P_i` over candidates, the paper's stretch-penalty mass for
    /// position `j` (Figure 3, step 3). `suffix_p(0)` is the total
    /// candidate mass; `suffix_p(m) = 0`.
    #[inline]
    pub fn suffix_p(&self, j: usize) -> f64 {
        self.suffix_p[j]
    }

    /// Converts a selector vector over sorted positions into a plan's item
    /// list in canonical prefetch order.
    pub fn selectors_to_items(&self, selected: &[bool]) -> Vec<ItemId> {
        selected
            .iter()
            .enumerate()
            .filter_map(|(j, &sel)| sel.then_some(self.ids[j]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s() -> Scenario {
        Scenario::new(vec![0.1, 0.4, 0.2, 0.3], vec![3.0, 7.0, 5.0, 2.0], 10.0).unwrap()
    }

    #[test]
    fn sorts_descending_probability() {
        let v = SortedView::new(&s());
        assert_eq!(v.m(), 4);
        assert_eq!(v.id(0), 1);
        assert_eq!(v.id(1), 3);
        assert_eq!(v.id(2), 2);
        assert_eq!(v.id(3), 0);
        assert!(v.p(0) >= v.p(1) && v.p(1) >= v.p(2) && v.p(2) >= v.p(3));
    }

    #[test]
    fn ties_sorted_by_retrieval_ascending() {
        let s = Scenario::new(vec![0.25, 0.25, 0.25, 0.25], vec![9.0, 1.0, 5.0, 3.0], 4.0).unwrap();
        let v = SortedView::new(&s);
        let rs: Vec<f64> = (0..4).map(|j| v.r(j)).collect();
        assert_eq!(rs, vec![1.0, 3.0, 5.0, 9.0]);
    }

    #[test]
    fn suffix_sums() {
        let v = SortedView::new(&s());
        assert!((v.suffix_p(0) - 1.0).abs() < 1e-12);
        assert!((v.suffix_p(1) - 0.6).abs() < 1e-12);
        assert!((v.suffix_p(4) - 0.0).abs() < 1e-12);
        // suffix is decreasing
        for j in 0..4 {
            assert!(v.suffix_p(j) >= v.suffix_p(j + 1));
        }
    }

    #[test]
    fn candidate_masking() {
        let sc = s();
        let v = SortedView::with_candidates(&sc, &[true, false, true, false]);
        assert_eq!(v.m(), 2);
        assert_eq!(v.id(0), 2); // P=0.2 before P=0.1
        assert_eq!(v.id(1), 0);
        assert!((v.suffix_p(0) - 0.3).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "candidate mask length")]
    fn wrong_mask_length_panics() {
        let _ = SortedView::with_candidates(&s(), &[true]);
    }

    #[test]
    fn selectors_roundtrip() {
        let v = SortedView::new(&s());
        let items = v.selectors_to_items(&[true, false, true, false]);
        assert_eq!(items, vec![1, 2]);
    }

    #[test]
    fn profit_accessor() {
        let v = SortedView::new(&s());
        assert!((v.profit(0) - 0.4 * 7.0).abs() < 1e-12);
    }
}
