//! Exhaustive ground-truth SKP solver.
//!
//! Enumerates every subset `S` of the candidate items and, for stretching
//! subsets, every *feasible* choice of the stretching item `z` (feasible
//! means the rest of `S` fits strictly within the viewing time, i.e.
//! `r_z > st(S)`). Among feasible `z` the gain is maximised by the smallest
//! `P_z` (the Theorem-1 argument), so only that one is evaluated.
//!
//! This searches a strictly larger space than the canonical
//! branch-and-bound: Theorem 1's swap argument ignores that the swapped
//! order must remain admissible, so when the minimum-probability item of
//! the optimal subset is too *short* to absorb the stretch (`r_z ≤ st`),
//! the optimum ends on a different item and the canonical space misses it.
//! Intended for tests and ablations; cost is `O(2^m · m)`.

use crate::gain::gain_empty_cache;
use crate::plan::PrefetchPlan;
use crate::scenario::{ItemId, Scenario};
use crate::skp::order::SortedView;
use crate::skp::SkpSolution;

/// Maximum candidate count accepted by the brute-force solver.
pub const MAX_BRUTE_ITEMS: usize = 24;

/// Exhaustive SKP optimum over all items of the scenario.
///
/// # Panics
/// Panics when the scenario has more than [`MAX_BRUTE_ITEMS`] items.
pub fn solve_optimal(s: &Scenario) -> SkpSolution {
    let view = SortedView::new(s);
    solve_on_view(s, &view)
}

/// Exhaustive SKP optimum restricted to candidate items.
pub fn solve_optimal_candidates(s: &Scenario, candidates: &[bool]) -> SkpSolution {
    let view = SortedView::with_candidates(s, candidates);
    solve_on_view(s, &view)
}

/// Exhaustive search over a pre-sorted view.
pub fn solve_on_view(s: &Scenario, view: &SortedView) -> SkpSolution {
    let m = view.m();
    assert!(
        m <= MAX_BRUTE_ITEMS,
        "brute-force SKP limited to {MAX_BRUTE_ITEMS} items, got {m}"
    );
    let v = s.viewing();

    let mut best_items: Vec<ItemId> = Vec::new();
    let mut best_gain = 0.0_f64;

    for mask in 1u32..(1u32 << m) {
        let mut total_r = 0.0;
        for j in 0..m {
            if mask & (1 << j) != 0 {
                total_r += view.r(j);
            }
        }
        let st = (total_r - v).max(0.0);

        // Pick the ordering: members in canonical order; for stretching
        // subsets the last item must be feasible (r_z > st) and, among
        // feasible ones, of minimal probability — i.e. the highest sorted
        // position with r_z > st (canonical order is P-descending).
        let mut items: Vec<ItemId> = Vec::with_capacity(m);
        if st == 0.0 {
            for j in 0..m {
                if mask & (1 << j) != 0 {
                    items.push(view.id(j));
                }
            }
        } else {
            let mut z_pos: Option<usize> = None;
            for j in (0..m).rev() {
                if mask & (1 << j) != 0 && view.r(j) > st {
                    z_pos = Some(j);
                    break;
                }
            }
            let Some(z) = z_pos else {
                continue; // no admissible ordering for this subset
            };
            for j in 0..m {
                if mask & (1 << j) != 0 && j != z {
                    items.push(view.id(j));
                }
            }
            items.push(view.id(z));
        }

        let g = gain_empty_cache(s, &items);
        if g > best_gain {
            best_gain = g;
            best_items = items;
        }
    }

    SkpSolution {
        plan: PrefetchPlan::new(best_items).expect("subset items are unique"),
        gain: best_gain,
        internal_gain: best_gain,
        nodes: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skp::{solve_exact, solve_paper};

    const TOL: f64 = 1e-9;

    fn sc(p: Vec<f64>, r: Vec<f64>, v: f64) -> Scenario {
        Scenario::new(p, r, v).unwrap()
    }

    #[test]
    fn trivial_cases() {
        let s = sc(vec![1.0], vec![2.0], 4.0);
        let sol = solve_optimal(&s);
        assert_eq!(sol.plan.items(), &[0]);
        assert!((sol.gain - 2.0).abs() < TOL);
    }

    #[test]
    fn agrees_with_exact_on_fitting_scenarios() {
        let s = sc(vec![0.5, 0.3, 0.2], vec![2.0, 3.0, 4.0], 100.0);
        let a = solve_optimal(&s);
        let b = solve_exact(&s);
        assert!((a.gain - b.gain).abs() < TOL);
        assert_eq!(a.plan.len(), 3);
    }

    #[test]
    fn dominates_both_branch_and_bound_solvers() {
        let cases = [
            sc(vec![0.5, 0.3, 0.2], vec![8.0, 6.0, 9.0], 10.0),
            sc(
                vec![0.3, 0.25, 0.2, 0.15, 0.1],
                vec![7.0, 4.0, 12.0, 2.0, 9.0],
                11.0,
            ),
            sc(
                vec![0.3, 0.3, 0.2, 0.1, 0.05, 0.05],
                vec![14.0, 5.0, 9.0, 6.0, 2.0, 30.0],
                16.0,
            ),
        ];
        for s in cases {
            let o = solve_optimal(&s);
            assert!(o.gain >= solve_exact(&s).gain - TOL);
            assert!(o.gain >= solve_paper(&s).gain - TOL);
        }
    }

    #[test]
    fn finds_non_canonical_optimum() {
        // Subset {0, 1} stretches by st = 7; the minimum-probability item 1
        // is too short to go last (r = 2 < st), so the only admissible
        // order is ⟨1, 0⟩ — outside the canonical space. Its gain
        // (0.5·10 + 0.3·2) − (1 − 0.3)·7 = 0.7 beats both singletons
        // (g({0}) = 5 − 5 = 0, g({1}) = 0.6).
        let s = sc(vec![0.5, 0.3, 0.2], vec![10.0, 2.0, 50.0], 5.0);
        let sol = solve_optimal(&s);
        assert_eq!(sol.plan.items(), &[1, 0]);
        assert!((sol.gain - 0.7).abs() < TOL);
        // ... and the canonical B&B solvers miss it:
        assert!(solve_exact(&s).gain < sol.gain - 0.05);
        assert!(solve_paper(&s).gain < sol.gain - 0.05);
    }

    #[test]
    fn returned_plan_is_admissible() {
        let s = sc(
            vec![0.25, 0.2, 0.2, 0.15, 0.1, 0.1],
            vec![4.0, 9.0, 2.0, 7.0, 3.0, 11.0],
            12.0,
        );
        let sol = solve_optimal(&s);
        assert!(PrefetchPlan::admissible(sol.plan.items().to_vec(), &s).is_ok());
        assert!((gain_empty_cache(&s, sol.plan.items()) - sol.gain).abs() < TOL);
    }

    #[test]
    fn candidates_variant_restricts() {
        let s = sc(vec![0.6, 0.4], vec![5.0, 5.0], 20.0);
        let sol = solve_optimal_candidates(&s, &[false, true]);
        assert_eq!(sol.plan.items(), &[1]);
    }

    #[test]
    #[should_panic(expected = "brute-force SKP limited")]
    fn too_many_items_panics() {
        let n = MAX_BRUTE_ITEMS + 1;
        let s = Scenario::new(vec![1.0 / n as f64; n], vec![1.0; n], 5.0).unwrap();
        let _ = solve_optimal(&s);
    }
}
