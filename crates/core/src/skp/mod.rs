//! The stretch knapsack problem (SKP) and its solvers (Section 4).
//!
//! SKP asks for the prefetch plan `F` maximising the access improvement
//! `g*(F)` of Eq. 3. It resembles a 0/1 knapsack with profit `P_i r_i`,
//! weight `r_i` and capacity `v`, except that the knapsack may *stretch*:
//! the last inserted item may overrun the capacity at a cost proportional
//! to the overrun (Eq. 2).
//!
//! Solvers provided:
//!
//! - [`solve_paper`] — the branch-and-bound of the paper's **Figure 3**,
//!   implemented verbatim (including its incremental-gain bookkeeping that
//!   prices the stretch penalty with the *suffix* probability mass
//!   `Σ_{i≥j} P_i`, which ignores items excluded by earlier backtracking);
//! - [`solve_exact`] — the same canonical-order branch-and-bound with the
//!   corrected Theorem-3 bookkeeping (`1 − Σ_{i∈K} P_i`), exact over the
//!   canonical search space of Theorem 1;
//! - [`brute::solve_optimal`] — exhaustive search over all subsets with
//!   optimal choice of the stretching item, the ground-truth oracle (the
//!   canonical space can miss optima whose minimum-probability item cannot
//!   feasibly go last; see `brute` docs);
//! - [`bound::upper_bound`] — the tight upper bound `U_g` of Eq. 7
//!   obtained from the linear relaxation (Theorem 2 / Dantzig's rule).
//!
//! All solvers sort items into the canonical order of Eq. 5 (probability
//! descending, ties by retrieval ascending) per Theorem 1.
//!
//! ```
//! use skp_core::{Scenario, skp};
//!
//! // P = (.5, .3, .2), r = (8, 6, 9), v = 10 — the suffix-mass-bug
//! // instance discussed in EXPERIMENTS.md.
//! let s = Scenario::new(vec![0.5, 0.3, 0.2], vec![8.0, 6.0, 9.0], 10.0)?;
//! let paper = skp::solve_paper(&s);    // verbatim Figure 3: picks {0, 2}
//! let exact = skp::solve_exact(&s);    // corrected: picks {0}
//! assert!(exact.gain > paper.gain);
//! assert!(exact.gain <= skp::upper_bound(&s) + 1e-9);
//! # Ok::<(), skp_core::ModelError>(())
//! ```

pub mod bound;
pub mod brute;
pub mod exact;
pub mod global;
pub mod order;
pub mod paper;

pub use bound::{linear_relaxation, upper_bound, LinearSolution};
pub use brute::solve_optimal;
pub use exact::solve_exact;
pub use global::{global_applicable, solve_global};
pub use order::SortedView;
pub use paper::solve_paper;

use crate::plan::PrefetchPlan;
use crate::scenario::Scenario;

/// Result of an SKP solver.
#[derive(Debug, Clone, PartialEq)]
pub struct SkpSolution {
    /// The selected prefetch plan, items in canonical prefetch order
    /// (the minimum-probability item last, per Theorem 1).
    pub plan: PrefetchPlan,
    /// The true access improvement `g*(plan)` of Eq. 3, recomputed from the
    /// closed form (for [`solve_paper`] this can differ from the solver's
    /// internal incremental value; see module docs).
    pub gain: f64,
    /// The solver's internal objective value for the returned plan. Equal to
    /// [`Self::gain`] for the exact solvers; may exceed it for the verbatim
    /// Figure-3 solver on backtracked branches.
    pub internal_gain: f64,
    /// Number of branch-and-bound nodes visited (forward steps), a measure
    /// of search effort; `0` for brute force.
    pub nodes: u64,
}

impl SkpSolution {
    /// An empty (do-nothing) solution with zero gain.
    pub fn empty() -> Self {
        Self {
            plan: PrefetchPlan::empty(),
            gain: 0.0,
            internal_gain: 0.0,
            nodes: 0,
        }
    }
}

/// Convenience: solve SKP restricted to candidate items (those for which
/// `candidates[i]` is true), as required by the Section-5 integration where
/// cached items must not be prefetched again. Uses the paper's solver.
pub fn solve_paper_candidates(s: &Scenario, candidates: &[bool]) -> SkpSolution {
    let view = SortedView::with_candidates(s, candidates);
    paper::solve_on_view(s, &view)
}

/// [`solve_exact`] restricted to candidate items.
pub fn solve_exact_candidates(s: &Scenario, candidates: &[bool]) -> SkpSolution {
    let view = SortedView::with_candidates(s, candidates);
    exact::solve_on_view(s, &view)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_solution_is_empty() {
        let e = SkpSolution::empty();
        assert!(e.plan.is_empty());
        assert_eq!(e.gain, 0.0);
    }

    #[test]
    fn candidate_restriction_excludes_items() {
        let s = Scenario::new(vec![0.6, 0.4], vec![5.0, 5.0], 20.0).unwrap();
        let sol = solve_paper_candidates(&s, &[false, true]);
        assert!(!sol.plan.contains(0));
        assert!(sol.plan.contains(1));
        let sol = solve_exact_candidates(&s, &[false, true]);
        assert!(!sol.plan.contains(0));
    }

    #[test]
    fn no_candidates_gives_empty_plan() {
        let s = Scenario::new(vec![0.6, 0.4], vec![5.0, 5.0], 20.0).unwrap();
        let sol = solve_paper_candidates(&s, &[false, false]);
        assert!(sol.plan.is_empty());
        assert_eq!(sol.gain, 0.0);
    }
}
