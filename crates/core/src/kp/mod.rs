//! Classic 0/1 knapsack solvers for the paper's **KP prefetch** baseline.
//!
//! KP prefetch selects items maximising `Σ P_i r_i` subject to
//! `Σ r_i ≤ v` — it never stretches past the viewing time (Section 4.4
//! calls this "the more conservative approach"). Profit of item `i` is its
//! delay profit `P_i r_i`, weight is `r_i`, capacity is `v`; the profit
//! *density* is therefore exactly `P_i`, so the canonical order of Eq. 5 is
//! also the density order required by Dantzig bounds.
//!
//! Three solvers are provided:
//! - [`solve_kp`] — Horowitz–Sahni branch-and-bound (works with real
//!   weights; used by the simulations);
//! - [`dp::solve_kp_dp`] — dynamic program over integer capacities
//!   (cross-check oracle for integral retrieval times);
//! - [`greedy_by_density`] — the linear-time greedy heuristic.

pub mod bb;
pub mod dp;

pub use bb::solve_kp;
pub use dp::solve_kp_dp;

use crate::plan::PrefetchPlan;
use crate::scenario::Scenario;
use crate::skp::order::SortedView;

/// Result of a 0/1 knapsack solver.
#[derive(Debug, Clone, PartialEq)]
pub struct KpSolution {
    /// Selected items in canonical order. As a prefetch plan this never
    /// stretches: `Σ r_i ≤ v`.
    pub plan: PrefetchPlan,
    /// Total profit `Σ_{i∈F} P_i r_i` — also the access improvement
    /// `g*(F)` of the plan, since `st(F) = 0`.
    pub profit: f64,
    /// Branch-and-bound nodes visited (0 for DP/greedy).
    pub nodes: u64,
}

impl KpSolution {
    /// The empty selection.
    pub fn empty() -> Self {
        Self {
            plan: PrefetchPlan::empty(),
            profit: 0.0,
            nodes: 0,
        }
    }
}

/// Greedy selection in density order: take each item that still fits.
/// A 1/2-approximation in general; exact when everything fits.
pub fn greedy_by_density(s: &Scenario) -> KpSolution {
    let view = SortedView::new(s);
    let mut cap = s.viewing();
    let mut items = Vec::new();
    let mut profit = 0.0;
    for j in 0..view.m() {
        if view.r(j) <= cap {
            cap -= view.r(j);
            profit += view.profit(j);
            items.push(view.id(j));
        }
    }
    KpSolution {
        plan: PrefetchPlan::new(items).expect("unique"),
        profit,
        nodes: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-9;

    #[test]
    fn greedy_takes_all_when_capacity_ample() {
        let s = Scenario::new(vec![0.5, 0.3, 0.2], vec![2.0, 3.0, 4.0], 100.0).unwrap();
        let sol = greedy_by_density(&s);
        assert_eq!(sol.plan.len(), 3);
        assert!((sol.profit - s.expected_no_prefetch()).abs() < TOL);
    }

    #[test]
    fn greedy_never_overflows() {
        let s = Scenario::new(vec![0.4, 0.3, 0.3], vec![6.0, 5.0, 4.0], 10.0).unwrap();
        let sol = greedy_by_density(&s);
        assert!(sol.plan.total_retrieval(&s) <= 10.0 + TOL);
    }

    #[test]
    fn empty_solution() {
        let e = KpSolution::empty();
        assert!(e.plan.is_empty());
        assert_eq!(e.profit, 0.0);
    }
}
