//! Dynamic-programming 0/1 knapsack for integral weights — the oracle used
//! to cross-check the branch-and-bound on the paper's integer workloads
//! (`r ∈ {1..30}`, `v ∈ {1..100}`).

use crate::plan::PrefetchPlan;
use crate::scenario::{ItemId, Scenario};

use super::KpSolution;

/// Largest capacity the DP will allocate a table for.
pub const MAX_DP_CAPACITY: usize = 1 << 20;

/// Exact 0/1 knapsack by dynamic programming over integer capacities.
///
/// Requires every retrieval time and the viewing time to be non-negative
/// integers (within `1e-9`); returns `None` otherwise, or when the rounded
/// capacity exceeds [`MAX_DP_CAPACITY`].
pub fn solve_kp_dp(s: &Scenario) -> Option<KpSolution> {
    let cap = to_int(s.viewing())?;
    if cap > MAX_DP_CAPACITY {
        return None;
    }
    let n = s.n();
    let weights: Option<Vec<usize>> = s.retrievals().iter().map(|&r| to_int(r)).collect();
    let weights = weights?;

    // dp[w] = best profit using a prefix of items at weight budget w;
    // keep[i] records the decision row for reconstruction.
    let mut dp = vec![0.0_f64; cap + 1];
    let mut keep = vec![false; n * (cap + 1)];
    for i in 0..n {
        let w_i = weights[i];
        let p_i = s.delay_profit(i);
        if w_i > cap {
            continue;
        }
        for w in (w_i..=cap).rev() {
            let candidate = dp[w - w_i] + p_i;
            if candidate > dp[w] {
                dp[w] = candidate;
                keep[i * (cap + 1) + w] = true;
            }
        }
    }

    // Reconstruct the chosen set, then order it canonically.
    let mut w = cap;
    let mut chosen: Vec<ItemId> = Vec::new();
    for i in (0..n).rev() {
        if keep[i * (cap + 1) + w] {
            chosen.push(i);
            w -= weights[i];
        }
    }
    s.sort_canonical(&mut chosen);
    let profit = dp[cap];
    Some(KpSolution {
        plan: PrefetchPlan::new(chosen).expect("unique"),
        profit,
        nodes: 0,
    })
}

fn to_int(x: f64) -> Option<usize> {
    if x < 0.0 {
        return None;
    }
    let r = x.round();
    if (x - r).abs() < 1e-9 && r <= usize::MAX as f64 {
        Some(r as usize)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kp::solve_kp;

    const TOL: f64 = 1e-9;

    fn sc(p: Vec<f64>, r: Vec<f64>, v: f64) -> Scenario {
        Scenario::new(p, r, v).unwrap()
    }

    #[test]
    fn rejects_fractional_weights() {
        let s = sc(vec![1.0], vec![1.5], 10.0);
        assert!(solve_kp_dp(&s).is_none());
    }

    #[test]
    fn rejects_fractional_capacity() {
        let s = sc(vec![1.0], vec![1.0], 10.5);
        assert!(solve_kp_dp(&s).is_none());
    }

    #[test]
    fn matches_branch_and_bound_profit() {
        let cases = [
            sc(vec![0.5, 0.3, 0.2], vec![8.0, 6.0, 9.0], 10.0),
            sc(
                vec![0.3, 0.25, 0.2, 0.15, 0.1],
                vec![7.0, 4.0, 12.0, 2.0, 9.0],
                11.0,
            ),
            sc(
                vec![0.2, 0.2, 0.2, 0.2, 0.1, 0.1],
                vec![5.0, 4.0, 3.0, 2.0, 1.0, 6.0],
                9.0,
            ),
        ];
        for s in cases {
            let dp = solve_kp_dp(&s).unwrap();
            let bb = solve_kp(&s);
            assert!(
                (dp.profit - bb.profit).abs() < TOL,
                "dp {} vs bb {}",
                dp.profit,
                bb.profit
            );
        }
    }

    #[test]
    fn reconstruction_profit_is_consistent() {
        let s = sc(
            vec![0.3, 0.25, 0.2, 0.15, 0.1],
            vec![7.0, 4.0, 12.0, 2.0, 9.0],
            11.0,
        );
        let dp = solve_kp_dp(&s).unwrap();
        let manual: f64 = dp.plan.items().iter().map(|&i| s.delay_profit(i)).sum();
        assert!((manual - dp.profit).abs() < TOL);
        assert!(dp.plan.total_retrieval(&s) <= s.viewing() + TOL);
    }

    #[test]
    fn zero_capacity_selects_nothing() {
        let s = sc(vec![1.0], vec![1.0], 0.0);
        let dp = solve_kp_dp(&s).unwrap();
        assert!(dp.plan.is_empty());
    }
}
