//! Horowitz–Sahni branch-and-bound for the 0/1 knapsack (reference \[4\] of
//! the paper), on which the Figure-3 SKP algorithm is modelled.

use crate::scenario::Scenario;
use crate::skp::bound::dantzig_residual;
use crate::skp::order::SortedView;

use super::KpSolution;
use crate::plan::PrefetchPlan;

/// Solves the 0/1 knapsack with profit `P_i r_i`, weight `r_i` and
/// capacity `v` by depth-first branch-and-bound with Dantzig bounds.
pub fn solve_kp(s: &Scenario) -> KpSolution {
    let view = SortedView::new(s);
    solve_on_view(s, &view)
}

/// Branch-and-bound restricted to candidate items.
pub fn solve_kp_candidates(s: &Scenario, candidates: &[bool]) -> KpSolution {
    let view = SortedView::with_candidates(s, candidates);
    solve_on_view(s, &view)
}

/// Branch-and-bound over a pre-sorted view (density order).
pub fn solve_on_view(s: &Scenario, view: &SortedView) -> KpSolution {
    let m = view.m();
    if m == 0 {
        return KpSolution::empty();
    }

    let mut best_x = vec![false; m];
    let mut best_p = 0.0_f64;
    let mut cur_x = vec![false; m];
    let mut cur_p = 0.0_f64;
    let mut cap = s.viewing();
    let mut j = 0usize;
    let mut nodes = 0u64;

    'outer: loop {
        // Bound for the residual subproblem.
        let u = dantzig_residual(view, j, cap);
        if best_p >= cur_p + u {
            if !backtrack(view, &mut cur_x, &mut cur_p, &mut cap, &mut j) {
                break 'outer;
            }
            continue 'outer;
        }

        // Greedy forward pass: insert every item that fits, skip the rest.
        while j < m {
            nodes += 1;
            if view.r(j) <= cap {
                cap -= view.r(j);
                cur_p += view.profit(j);
                cur_x[j] = true;
                j += 1;
            } else {
                cur_x[j] = false;
                j += 1;
                if j < m {
                    continue 'outer; // recompute the bound after a skip
                }
            }
        }

        if cur_p > best_p {
            best_p = cur_p;
            best_x.copy_from_slice(&cur_x);
        }

        if !backtrack(view, &mut cur_x, &mut cur_p, &mut cap, &mut j) {
            break 'outer;
        }
    }

    KpSolution {
        plan: PrefetchPlan::new(view.selectors_to_items(&best_x)).expect("unique"),
        profit: best_p,
        nodes,
    }
}

fn backtrack(
    view: &SortedView,
    cur_x: &mut [bool],
    cur_p: &mut f64,
    cap: &mut f64,
    j: &mut usize,
) -> bool {
    let Some(k) = (0..*j).rev().find(|&k| cur_x[k]) else {
        return false;
    };
    cur_x[k] = false;
    *cap += view.r(k);
    *cur_p -= view.profit(k);
    *j = k + 1;
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kp::greedy_by_density;

    const TOL: f64 = 1e-9;

    fn sc(p: Vec<f64>, r: Vec<f64>, v: f64) -> Scenario {
        Scenario::new(p, r, v).unwrap()
    }

    #[test]
    fn beats_greedy_when_greedy_is_myopic() {
        // Greedy takes the high-density item 0 (r=6) and can no longer fit
        // items 1+2 whose combined profit is higher.
        let s = sc(vec![0.5, 0.45, 0.05], vec![6.0, 5.0, 5.0], 10.0);
        let greedy = greedy_by_density(&s);
        let opt = solve_kp(&s);
        // greedy: item0 + item2 (0.5*6 + 0.05*5 = 3.25);
        // optimal: item0 ... let's just assert dominance:
        assert!(opt.profit >= greedy.profit - TOL);
    }

    #[test]
    fn respects_capacity() {
        let s = sc(
            vec![0.3, 0.25, 0.2, 0.15, 0.1],
            vec![7.0, 4.0, 12.0, 2.0, 9.0],
            11.0,
        );
        let sol = solve_kp(&s);
        assert!(sol.plan.total_retrieval(&s) <= s.viewing() + TOL);
    }

    #[test]
    fn profit_equals_gain_of_plan() {
        let s = sc(
            vec![0.3, 0.25, 0.2, 0.15, 0.1],
            vec![7.0, 4.0, 12.0, 2.0, 9.0],
            11.0,
        );
        let sol = solve_kp(&s);
        let g = crate::gain::gain_empty_cache(&s, sol.plan.items());
        assert!((sol.profit - g).abs() < TOL);
    }

    #[test]
    fn takes_all_when_everything_fits() {
        let s = sc(vec![0.5, 0.5], vec![2.0, 3.0], 10.0);
        let sol = solve_kp(&s);
        assert_eq!(sol.plan.len(), 2);
    }

    #[test]
    fn empty_when_nothing_fits() {
        let s = sc(vec![0.5, 0.5], vec![20.0, 30.0], 10.0);
        let sol = solve_kp(&s);
        assert!(sol.plan.is_empty());
        assert_eq!(sol.profit, 0.0);
    }

    #[test]
    fn candidates_are_respected() {
        let s = sc(vec![0.6, 0.4], vec![2.0, 2.0], 10.0);
        let sol = solve_kp_candidates(&s, &[false, true]);
        assert_eq!(sol.plan.items(), &[1]);
    }

    #[test]
    fn zero_capacity() {
        let s = sc(vec![1.0], vec![1.0], 0.0);
        assert!(solve_kp(&s).plan.is_empty());
    }

    #[test]
    fn known_optimum_small_instance() {
        // capacity 10; (profit, weight): a=(4.0, 8), b=(1.8, 6), c=(1.8, 9)
        // wait profits are P*r: (0.5*8, 0.3*6, 0.2*9) = (4.0, 1.8, 1.8).
        // best: {a} (4.0) vs {b} (1.8) vs ... a+b = 14 > 10. answer {a}.
        let s = sc(vec![0.5, 0.3, 0.2], vec![8.0, 6.0, 9.0], 10.0);
        let sol = solve_kp(&s);
        assert_eq!(sol.plan.items(), &[0]);
        assert!((sol.profit - 4.0).abs() < TOL);
    }
}
