//! The model parameters of Section 2 of the paper: `(n, P, r, v)`.

use crate::error::ModelError;
use crate::EPS;

/// Identifier of an item. Items of a [`Scenario`] are numbered `0..n`
/// (the paper numbers them `1..n`; we use zero-based ids throughout).
pub type ItemId = usize;

/// A one-access look-ahead prefetching scenario.
///
/// Holds, for each of the `n` items that might be requested next:
/// the probability `P_i` that it is the next access and its retrieval time
/// `r_i`, plus the viewing time `v` available for prefetching.
///
/// Invariants enforced at construction:
/// - `probs.len() == retrievals.len()`,
/// - every `P_i ∈ [0, 1]` and `Σ P_i ≤ 1 + EPS` (mass may be < 1 when some
///   probability rests on items that cannot be prefetched, e.g. cached ones),
/// - every `r_i > 0` and finite,
/// - `v ≥ 0` and finite.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    probs: Vec<f64>,
    retrievals: Vec<f64>,
    viewing: f64,
    total_mass: f64,
}

impl Scenario {
    /// Builds a scenario from next-access probabilities, retrieval times and
    /// the viewing time, validating all model invariants.
    pub fn new(probs: Vec<f64>, retrievals: Vec<f64>, viewing: f64) -> Result<Self, ModelError> {
        if probs.len() != retrievals.len() {
            return Err(ModelError::LengthMismatch {
                probs: probs.len(),
                retrievals: retrievals.len(),
            });
        }
        let mut total = 0.0_f64;
        for (i, &p) in probs.iter().enumerate() {
            if !p.is_finite() || !(0.0..=1.0 + EPS).contains(&p) {
                return Err(ModelError::BadProbability { index: i, value: p });
            }
            total += p;
        }
        if total > 1.0 + 1e-6 {
            return Err(ModelError::MassExceedsOne { total });
        }
        for (i, &r) in retrievals.iter().enumerate() {
            if !r.is_finite() || r <= 0.0 {
                return Err(ModelError::BadRetrievalTime { index: i, value: r });
            }
        }
        if !viewing.is_finite() || viewing < 0.0 {
            return Err(ModelError::BadViewingTime { value: viewing });
        }
        Ok(Self {
            probs,
            retrievals,
            viewing,
            total_mass: total,
        })
    }

    /// Builds a scenario whose probabilities are normalised to sum to one.
    ///
    /// Convenience for workload generators that produce unnormalised
    /// weights. All weights must be non-negative and at least one positive.
    pub fn from_weights(
        weights: Vec<f64>,
        retrievals: Vec<f64>,
        viewing: f64,
    ) -> Result<Self, ModelError> {
        let sum: f64 = weights.iter().sum();
        if !sum.is_finite() || sum <= 0.0 {
            return Err(ModelError::BadProbability {
                index: 0,
                value: sum,
            });
        }
        let probs = weights.into_iter().map(|w| w / sum).collect();
        Self::new(probs, retrievals, viewing)
    }

    /// Number of items, `n`.
    #[inline]
    pub fn n(&self) -> usize {
        self.probs.len()
    }

    /// Probability `P_i` that item `i` is the next access.
    #[inline]
    pub fn prob(&self, i: ItemId) -> f64 {
        self.probs[i]
    }

    /// Retrieval time `r_i` of item `i`.
    #[inline]
    pub fn retrieval(&self, i: ItemId) -> f64 {
        self.retrievals[i]
    }

    /// Viewing time `v`: the window available for prefetching.
    #[inline]
    pub fn viewing(&self) -> f64 {
        self.viewing
    }

    /// Total probability mass `Σ_i P_i` (≤ 1).
    ///
    /// The mass may be below one when the scenario models only the items
    /// eligible for prefetching while some next-access probability rests on
    /// other items (e.g. items already cached).
    #[inline]
    pub fn total_mass(&self) -> f64 {
        self.total_mass
    }

    /// All probabilities, indexed by item id.
    #[inline]
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// All retrieval times, indexed by item id.
    #[inline]
    pub fn retrievals(&self) -> &[f64] {
        &self.retrievals
    }

    /// The *delay profit* `P_i · r_i` of item `i` — the expected time saved
    /// by having item `i` fully prefetched (ignoring stretch).
    #[inline]
    pub fn delay_profit(&self, i: ItemId) -> f64 {
        self.probs[i] * self.retrievals[i]
    }

    /// Expected access time with no prefetching and an empty cache:
    /// `E[T*(no prefetch)] = Σ_i P_i r_i`.
    pub fn expected_no_prefetch(&self) -> f64 {
        self.probs
            .iter()
            .zip(&self.retrievals)
            .map(|(p, r)| p * r)
            .sum()
    }

    /// Returns a copy with a different viewing time.
    pub fn with_viewing(&self, viewing: f64) -> Result<Self, ModelError> {
        Self::new(self.probs.clone(), self.retrievals.clone(), viewing)
    }

    /// Returns all item ids in the paper's canonical order (Eq. 5):
    /// descending probability, ties broken by ascending retrieval time.
    ///
    /// Theorem 1 shows the optimal stretching plan lists items in this
    /// order, so every solver in [`crate::skp`] works on this permutation.
    pub fn canonical_order(&self) -> Vec<ItemId> {
        let mut ids: Vec<ItemId> = (0..self.n()).collect();
        self.sort_canonical(&mut ids);
        ids
    }

    /// Sorts a set of item ids in-place into the canonical order (Eq. 5).
    pub fn sort_canonical(&self, ids: &mut [ItemId]) {
        ids.sort_by(|&a, &b| {
            self.probs[b]
                .total_cmp(&self.probs[a])
                .then(self.retrievals[a].total_cmp(&self.retrievals[b]))
                .then(a.cmp(&b))
        });
    }

    /// Validates that an id belongs to this scenario.
    pub fn check_item(&self, id: ItemId) -> Result<(), ModelError> {
        if id < self.n() {
            Ok(())
        } else {
            Err(ModelError::UnknownItem { id, n: self.n() })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s3() -> Scenario {
        Scenario::new(vec![0.5, 0.3, 0.2], vec![8.0, 6.0, 9.0], 10.0).unwrap()
    }

    #[test]
    fn basic_accessors() {
        let s = s3();
        assert_eq!(s.n(), 3);
        assert_eq!(s.prob(0), 0.5);
        assert_eq!(s.retrieval(2), 9.0);
        assert_eq!(s.viewing(), 10.0);
        assert!((s.total_mass() - 1.0).abs() < 1e-12);
        assert_eq!(s.probs().len(), 3);
        assert_eq!(s.retrievals().len(), 3);
    }

    #[test]
    fn expected_no_prefetch_is_dot_product() {
        let s = s3();
        let expect = 0.5 * 8.0 + 0.3 * 6.0 + 0.2 * 9.0;
        assert!((s.expected_no_prefetch() - expect).abs() < 1e-12);
    }

    #[test]
    fn delay_profit() {
        let s = s3();
        assert!((s.delay_profit(0) - 4.0).abs() < 1e-12);
        assert!((s.delay_profit(1) - 1.8).abs() < 1e-12);
    }

    #[test]
    fn rejects_length_mismatch() {
        let e = Scenario::new(vec![0.5], vec![1.0, 2.0], 3.0).unwrap_err();
        assert!(matches!(e, ModelError::LengthMismatch { .. }));
    }

    #[test]
    fn rejects_bad_probability() {
        assert!(matches!(
            Scenario::new(vec![-0.1, 0.5], vec![1.0, 1.0], 1.0),
            Err(ModelError::BadProbability { index: 0, .. })
        ));
        assert!(matches!(
            Scenario::new(vec![f64::NAN], vec![1.0], 1.0),
            Err(ModelError::BadProbability { .. })
        ));
        assert!(matches!(
            Scenario::new(vec![1.5], vec![1.0], 1.0),
            Err(ModelError::BadProbability { .. })
        ));
    }

    #[test]
    fn rejects_mass_over_one() {
        assert!(matches!(
            Scenario::new(vec![0.7, 0.7], vec![1.0, 1.0], 1.0),
            Err(ModelError::MassExceedsOne { .. })
        ));
    }

    #[test]
    fn accepts_mass_under_one() {
        let s = Scenario::new(vec![0.2, 0.3], vec![1.0, 1.0], 1.0).unwrap();
        assert!((s.total_mass() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_retrieval() {
        assert!(matches!(
            Scenario::new(vec![1.0], vec![0.0], 1.0),
            Err(ModelError::BadRetrievalTime { .. })
        ));
        assert!(matches!(
            Scenario::new(vec![1.0], vec![-2.0], 1.0),
            Err(ModelError::BadRetrievalTime { .. })
        ));
        assert!(matches!(
            Scenario::new(vec![1.0], vec![f64::INFINITY], 1.0),
            Err(ModelError::BadRetrievalTime { .. })
        ));
    }

    #[test]
    fn rejects_bad_viewing() {
        assert!(matches!(
            Scenario::new(vec![1.0], vec![1.0], -1.0),
            Err(ModelError::BadViewingTime { .. })
        ));
        assert!(matches!(
            Scenario::new(vec![1.0], vec![1.0], f64::NAN),
            Err(ModelError::BadViewingTime { .. })
        ));
    }

    #[test]
    fn zero_viewing_is_legal() {
        // v = 0 means no prefetch window at all; still a valid model point.
        let s = Scenario::new(vec![1.0], vec![1.0], 0.0).unwrap();
        assert_eq!(s.viewing(), 0.0);
    }

    #[test]
    fn from_weights_normalises() {
        let s = Scenario::from_weights(vec![2.0, 2.0, 4.0], vec![1.0, 1.0, 1.0], 1.0).unwrap();
        assert!((s.prob(0) - 0.25).abs() < 1e-12);
        assert!((s.prob(2) - 0.5).abs() < 1e-12);
        assert!((s.total_mass() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_weights_rejects_zero_sum() {
        assert!(Scenario::from_weights(vec![0.0, 0.0], vec![1.0, 1.0], 1.0).is_err());
    }

    #[test]
    fn canonical_order_sorts_by_prob_then_retrieval() {
        // P: [0.2, 0.5, 0.2, 0.1]; r: [4.0, 1.0, 2.0, 1.0]
        let s = Scenario::new(vec![0.2, 0.5, 0.2, 0.1], vec![4.0, 1.0, 2.0, 1.0], 10.0).unwrap();
        // Highest P first; the two P=0.2 items ordered by ascending r.
        assert_eq!(s.canonical_order(), vec![1, 2, 0, 3]);
    }

    #[test]
    fn canonical_order_is_deterministic_on_full_ties() {
        let s = Scenario::new(vec![0.25; 4], vec![2.0; 4], 5.0).unwrap();
        assert_eq!(s.canonical_order(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn with_viewing_replaces_only_v() {
        let s = s3().with_viewing(99.0).unwrap();
        assert_eq!(s.viewing(), 99.0);
        assert_eq!(s.prob(0), 0.5);
    }

    #[test]
    fn check_item_bounds() {
        let s = s3();
        assert!(s.check_item(2).is_ok());
        assert!(matches!(
            s.check_item(3),
            Err(ModelError::UnknownItem { id: 3, n: 3 })
        ));
    }
}
