//! The paper's closed-form performance formulas (Sections 3 and 5):
//! stretch time, per-outcome access time, expected access time, and the
//! access-improvement functions `g*(F)` (Eq. 3) and `g(F, D)` (Eq. 9).

use crate::scenario::{ItemId, Scenario};

/// Stretch time `st(F) = max(0, Σ_{i∈F} r_i − v)` (Eq. 2): the amount by
/// which retrieving the whole plan overruns the viewing time.
pub fn stretch_time(s: &Scenario, plan: &[ItemId]) -> f64 {
    let total: f64 = plan.iter().map(|&i| s.retrieval(i)).sum();
    (total - s.viewing()).max(0.0)
}

/// Access time with an **empty cache** when `plan` was prefetched and item
/// `alpha` is actually requested (Figure 2 of the paper):
///
/// - `alpha ∈ K` (fully prefetched): `0`;
/// - `alpha = z` (the stretching last item): `st(F)`;
/// - `alpha ∉ F`: `st(F) + r_alpha` — the in-flight prefetch completes
///   before the demand fetch starts.
pub fn access_time_empty(s: &Scenario, plan: &[ItemId], alpha: ItemId) -> f64 {
    if plan.is_empty() {
        return s.retrieval(alpha);
    }
    let st = stretch_time(s, plan);
    let z = *plan.last().expect("non-empty");
    if alpha == z {
        st
    } else if plan[..plan.len() - 1].contains(&alpha) {
        0.0
    } else {
        st + s.retrieval(alpha)
    }
}

/// Expected access time with an empty cache when `plan` is prefetched:
/// `E[T*(prefetch F)] = P_z·st(F) + Σ_{i∈N\F} P_i (r_i + st(F))`.
pub fn expected_access_time_empty(s: &Scenario, plan: &[ItemId]) -> f64 {
    if plan.is_empty() {
        return s.expected_no_prefetch();
    }
    let st = stretch_time(s, plan);
    let z = *plan.last().expect("non-empty");
    let mut e = s.prob(z) * st;
    for i in 0..s.n() {
        if !plan.contains(&i) {
            e += s.prob(i) * (s.retrieval(i) + st);
        }
    }
    e
}

/// Access improvement with an empty cache (Eq. 3):
///
/// `g*(F) = Σ_{i∈F} P_i r_i − Σ_{i∈N\K} P_i · st(F)`
///
/// where `K` is the plan without its last item. When the scenario's
/// probability mass is below one (some probability rests on items outside
/// the scenario, e.g. cached items), the uncovered mass still pays the
/// stretch penalty, which the implementation accounts for via
/// [`Scenario::total_mass`]. The penalty mass is computed against mass 1
/// when the scenario is complete.
pub fn gain_empty_cache(s: &Scenario, plan: &[ItemId]) -> f64 {
    if plan.is_empty() {
        return 0.0;
    }
    let st = stretch_time(s, plan);
    let profit: f64 = plan.iter().map(|&i| s.delay_profit(i)).sum();
    if st == 0.0 {
        return profit;
    }
    let prefix_mass: f64 = plan[..plan.len() - 1].iter().map(|&i| s.prob(i)).sum();
    // Σ_{i∈N\K} P_i over *all* items that might be requested, including any
    // probability mass outside this scenario (it also suffers the stretch).
    let penalty_mass = penalty_mass(s, prefix_mass);
    profit - penalty_mass * st
}

/// The probability mass that pays the stretch penalty: everything except
/// the fully-prefetched prefix `K`. Uses mass `1` for complete scenarios
/// and extends to reduced scenarios (mass < 1) by charging the uncovered
/// remainder too, matching the Section-5 derivation.
#[inline]
pub fn penalty_mass(s: &Scenario, prefix_mass: f64) -> f64 {
    let _ = s;
    (1.0 - prefix_mass).max(0.0)
}

/// Theorem 3: appending `z` to a non-stretching prefix `K` changes the gain
/// by `δ = P_z r_z − (1 − Σ_{i∈K} P_i) · st(K ⧺ ⟨z⟩)`.
pub fn theorem3_delta(s: &Scenario, prefix: &[ItemId], z: ItemId) -> f64 {
    let mut all: Vec<ItemId> = prefix.to_vec();
    all.push(z);
    let st = stretch_time(s, &all);
    let prefix_mass: f64 = prefix.iter().map(|&i| s.prob(i)).sum();
    s.delay_profit(z) - penalty_mass(s, prefix_mass) * st
}

/// Expected access time with **no prefetch** and cache contents `cache`:
/// `E[T(no prefetch)] = Σ_{i∈N\C} P_i r_i` (cache hits cost zero).
pub fn expected_no_prefetch_cached(s: &Scenario, cache: &[ItemId]) -> f64 {
    (0..s.n())
        .filter(|i| !cache.contains(i))
        .map(|i| s.delay_profit(i))
        .sum()
}

/// Access time when `plan` is prefetched, `eject` is evicted from `cache`
/// to make room, and `alpha` is requested (Section 5):
///
/// - `alpha ∈ K ∪ (C \ D)`: `0`;
/// - `alpha = z`: `st(F)`;
/// - otherwise: `st(F) + r_alpha`.
pub fn access_time_cached(
    s: &Scenario,
    plan: &[ItemId],
    cache: &[ItemId],
    eject: &[ItemId],
    alpha: ItemId,
) -> f64 {
    let st = stretch_time(s, plan);
    let in_surviving_cache = cache.contains(&alpha) && !eject.contains(&alpha);
    if in_surviving_cache {
        return 0.0;
    }
    match plan.last() {
        Some(&z) if alpha == z => st,
        _ if !plan.is_empty() && plan[..plan.len() - 1].contains(&alpha) => 0.0,
        _ => st + s.retrieval(alpha),
    }
}

/// Expected access time for the prefetch-with-ejection case of Section 5.
pub fn expected_access_time_cached(
    s: &Scenario,
    plan: &[ItemId],
    cache: &[ItemId],
    eject: &[ItemId],
) -> f64 {
    (0..s.n())
        .map(|i| s.prob(i) * access_time_cached(s, plan, cache, eject, i))
        .sum::<f64>()
        // Probability mass outside the scenario still pays the stretch when
        // the request misses everything modelled here; complete scenarios
        // (mass 1) contribute nothing through this term.
        + (1.0 - s.total_mass()).max(0.0) * stretch_time(s, plan)
}

/// Access improvement with cache interaction (Eq. 9):
///
/// `g(F, D) = g*(F) − (Σ_{i∈D} P_i r_i − Σ_{i∈C\D} P_i · st(F))`.
///
/// `plan` must be disjoint from `cache`; `eject ⊆ cache`.
pub fn gain_with_cache(s: &Scenario, plan: &[ItemId], cache: &[ItemId], eject: &[ItemId]) -> f64 {
    let st = stretch_time(s, plan);
    let eject_cost: f64 = eject.iter().map(|&i| s.delay_profit(i)).sum();
    let kept_mass: f64 = cache
        .iter()
        .filter(|i| !eject.contains(i))
        .map(|&i| s.prob(i))
        .sum();
    gain_empty_cache(s, plan) - (eject_cost - kept_mass * st)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scenario;

    const TOL: f64 = 1e-9;

    fn s() -> Scenario {
        // v = 10; items: (P, r) = (0.5, 8), (0.3, 6), (0.2, 9)
        Scenario::new(vec![0.5, 0.3, 0.2], vec![8.0, 6.0, 9.0], 10.0).unwrap()
    }

    #[test]
    fn stretch_zero_when_plan_fits() {
        assert_eq!(stretch_time(&s(), &[0]), 0.0); // 8 <= 10
        assert_eq!(stretch_time(&s(), &[1]), 0.0); // 6 <= 10
        assert_eq!(stretch_time(&s(), &[]), 0.0);
    }

    #[test]
    fn stretch_positive_when_overrunning() {
        // 8 + 9 = 17 > 10 -> st = 7
        assert!((stretch_time(&s(), &[0, 2]) - 7.0).abs() < TOL);
    }

    #[test]
    fn access_time_cases_of_figure_2() {
        let sc = s();
        let plan = [0usize, 2]; // K = {0}, z = 2, st = 7
                                // Case A: requested item fully prefetched.
        assert_eq!(access_time_empty(&sc, &plan, 0), 0.0);
        // Case B: requested item is the stretching item.
        assert!((access_time_empty(&sc, &plan, 2) - 7.0).abs() < TOL);
        // Case C: requested item not prefetched: st + r.
        assert!((access_time_empty(&sc, &plan, 1) - (7.0 + 6.0)).abs() < TOL);
    }

    #[test]
    fn access_time_empty_plan_is_retrieval() {
        assert_eq!(access_time_empty(&s(), &[], 1), 6.0);
    }

    #[test]
    fn expected_access_time_matches_manual_sum() {
        let sc = s();
        let plan = [0usize, 2];
        let manual: f64 = sc.prob(0) * 0.0 + sc.prob(2) * 7.0 + sc.prob(1) * (7.0 + 6.0);
        assert!((expected_access_time_empty(&sc, &plan) - manual).abs() < TOL);
    }

    #[test]
    fn gain_is_no_prefetch_minus_prefetch() {
        // The definitional identity g*(F) = E[T*(np)] − E[T*(F)] must hold
        // for every plan; check a fitting and a stretching plan.
        let sc = s();
        for plan in [vec![1usize], vec![0, 2], vec![0], vec![1, 0]] {
            let g = gain_empty_cache(&sc, &plan);
            let lhs = sc.expected_no_prefetch() - expected_access_time_empty(&sc, &plan);
            assert!(
                (g - lhs).abs() < TOL,
                "plan {plan:?}: formula {g} vs definition {lhs}"
            );
        }
    }

    #[test]
    fn gain_of_empty_plan_is_zero() {
        assert_eq!(gain_empty_cache(&s(), &[]), 0.0);
    }

    #[test]
    fn gain_of_fitting_plan_is_pure_profit() {
        let sc = s();
        // items 1 then 0: 6 + 8 = 14 > 10 stretches... use single items.
        assert!((gain_empty_cache(&sc, &[0]) - 4.0).abs() < TOL);
        assert!((gain_empty_cache(&sc, &[1]) - 1.8).abs() < TOL);
    }

    #[test]
    fn wrong_prefetch_can_have_negative_gain() {
        // Low-probability stretching item: penalty exceeds profit.
        let sc = Scenario::new(vec![0.9, 0.1], vec![1.0, 50.0], 2.0).unwrap();
        let g = gain_empty_cache(&sc, &[1]); // st = 48, profit = 5
        assert!(g < 0.0);
    }

    #[test]
    fn theorem3_matches_direct_difference() {
        let sc = s();
        // K = [1] (r = 6 < 10), z = 0 -> F = [1, 0], st = 4.
        let delta = theorem3_delta(&sc, &[1], 0);
        let direct = gain_empty_cache(&sc, &[1, 0]) - gain_empty_cache(&sc, &[1]);
        assert!((delta - direct).abs() < TOL);
    }

    #[test]
    fn theorem3_no_stretch_is_plain_profit() {
        let sc = s();
        let delta = theorem3_delta(&sc, &[], 1);
        assert!((delta - sc.delay_profit(1)).abs() < TOL);
    }

    #[test]
    fn cached_no_prefetch_skips_cache_hits() {
        let sc = s();
        let e = expected_no_prefetch_cached(&sc, &[0]);
        assert!((e - (0.3 * 6.0 + 0.2 * 9.0)).abs() < TOL);
    }

    #[test]
    fn cached_access_time_cases() {
        let sc = s();
        let cache = [1usize];
        let eject: [usize; 0] = [];
        let plan = [0usize, 2]; // st = 7
        assert_eq!(access_time_cached(&sc, &plan, &cache, &eject, 1), 0.0); // cache hit
        assert_eq!(access_time_cached(&sc, &plan, &cache, &eject, 0), 0.0); // in K
        assert!((access_time_cached(&sc, &plan, &cache, &eject, 2) - 7.0).abs() < TOL);
        // z
    }

    #[test]
    fn ejected_item_pays_full_price() {
        let sc = s();
        let cache = [1usize];
        let eject = [1usize];
        let plan = [0usize]; // fits, st = 0
        assert!((access_time_cached(&sc, &plan, &cache, &eject, 1) - 6.0).abs() < TOL);
    }

    #[test]
    fn gain_with_cache_matches_definition() {
        // g(F, D) must equal E[T(no prefetch)] − E[T(F ejects D)] for
        // complete scenarios.
        let sc = s();
        let cache = vec![1usize];
        for (plan, eject) in [
            (vec![0usize], vec![]),
            (vec![0usize], vec![1usize]),
            (vec![0, 2], vec![1usize]),
            (vec![2], vec![]),
        ] {
            let g = gain_with_cache(&sc, &plan, &cache, &eject);
            let lhs = expected_no_prefetch_cached(&sc, &cache)
                - expected_access_time_cached(&sc, &plan, &cache, &eject);
            assert!(
                (g - lhs).abs() < TOL,
                "plan {plan:?} eject {eject:?}: {g} vs {lhs}"
            );
        }
    }

    #[test]
    fn gain_with_empty_cache_reduces_to_gain_empty() {
        let sc = s();
        let plan = vec![0usize, 2];
        let g1 = gain_with_cache(&sc, &plan, &[], &[]);
        let g2 = gain_empty_cache(&sc, &plan);
        assert!((g1 - g2).abs() < TOL);
    }

    #[test]
    fn keeping_cache_items_discounts_stretch_penalty() {
        // With a stretching plan, a surviving cached item's probability does
        // not pay the stretch penalty (its access time is 0 regardless).
        let sc = s();
        let plan = vec![0usize, 2]; // st = 7
        let with_cache = gain_with_cache(&sc, &plan, &[1], &[]);
        let without = gain_empty_cache(&sc, &plan);
        // g(F, ∅) = g*(F) + Σ_{C} P st = g* + 0.3*7
        assert!((with_cache - (without + 0.3 * 7.0)).abs() < TOL);
    }
}
