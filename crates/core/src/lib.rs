//! # skp-core — a performance model of speculative prefetching
//!
//! This crate implements the analytical core of *"A Performance Model of
//! Speculative Prefetching in Distributed Information Systems"* (N. J. Tuah,
//! M. Kumar, S. Venkatesh, IPPS/SPDP 1999).
//!
//! The paper models a client that, while the user is *viewing* the current
//! item for a duration `v`, may speculatively prefetch remote items. Item
//! `i` takes `r_i` time units to retrieve and will be the next request with
//! probability `P_i`. The metric is the **access improvement**
//!
//! ```text
//! g = E[T(no prefetch)] − E[T(prefetch)]
//! ```
//!
//! where `T` is the response time of the next actual request. Because a
//! prefetch in progress completes before a demand fetch begins, an
//! over-committed prefetch plan *stretches* past the viewing time and can
//! hurt: `st(F) = max(0, Σ_{i∈F} r_i − v)`.
//!
//! Maximising `g` is the **stretch knapsack problem** (SKP). This crate
//! provides:
//!
//! - [`Scenario`]: the model parameters `(n, P, r, v)` with validation;
//! - [`plan::PrefetchPlan`] and the closed-form formulas of the paper
//!   ([`gain`]): stretch time, per-outcome access time, expected access
//!   time, `g*(F)` (Eq. 3) and `g(F, D)` (Eq. 9);
//! - the SKP solvers ([`skp`]): the paper's Figure-3 branch-and-bound
//!   (verbatim), a corrected exact branch-and-bound, a brute-force oracle,
//!   and the Dantzig-style upper bound of Theorem 2;
//! - classic 0/1 knapsack solvers used by the paper's *KP prefetch*
//!   baseline ([`kp`]);
//! - prefetch policies ([`policy`]) packaging the solvers;
//! - the prefetch–cache integration of Section 5 ([`arbitration`]):
//!   Pr-arbitration with LFU or delay-saving (DS) sub-arbitration
//!   (Figure 6);
//! - the paper's stated extensions ([`ext`]): stretch-penalised lookahead,
//!   network-usage-aware objective, and unequal item sizes.
//!
//! ## Quick example
//!
//! ```
//! use skp_core::{Scenario, skp, gain};
//!
//! // Three candidate items; the user will view the current page for 10 time
//! // units; item retrieval times and next-access probabilities are known.
//! let s = Scenario::new(vec![0.5, 0.3, 0.2], vec![8.0, 6.0, 9.0], 10.0).unwrap();
//! let sol = skp::solve_paper(&s);
//! assert!(sol.gain > 0.0);
//! // ... and its gain is exactly the closed-form g*:
//! let g = gain::gain_empty_cache(&s, sol.plan.items());
//! assert!((g - sol.gain).abs() < 1e-9);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod arbitration;
pub mod error;
pub mod ext;
pub mod gain;
pub mod kp;
pub mod plan;
pub mod policy;
pub mod scenario;
pub mod skp;
pub mod theorems;

pub use error::ModelError;
pub use plan::PrefetchPlan;
pub use scenario::{ItemId, Scenario};

/// Absolute tolerance used by the crate when comparing `f64` gains.
pub const EPS: f64 = 1e-9;
