//! Prefetch plans: the list `F = K ⧺ ⟨z⟩` of construction (1).

use crate::error::ModelError;
use crate::scenario::{ItemId, Scenario};

/// An ordered list of items to prefetch during the viewing time.
///
/// Following construction (1) of the paper, a non-empty plan is
/// `F = K ⧺ ⟨z⟩` where every item of the prefix `K` completes strictly
/// within the viewing time (`Σ_{i∈K} r_i < v`) and only the *last* item `z`
/// may stretch past it. The empty plan means "prefetch nothing".
///
/// A plan stores item ids in prefetch order; the order matters whenever the
/// plan stretches (Theorem 1).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PrefetchPlan {
    items: Vec<ItemId>,
}

impl PrefetchPlan {
    /// The empty plan (no prefetching).
    pub fn empty() -> Self {
        Self { items: Vec::new() }
    }

    /// Builds a plan from items in prefetch order **without** checking
    /// admissibility against a scenario. Duplicates are rejected.
    pub fn new(items: Vec<ItemId>) -> Result<Self, ModelError> {
        let mut seen = std::collections::HashSet::with_capacity(items.len());
        for &i in &items {
            if !seen.insert(i) {
                return Err(ModelError::DuplicateItem { id: i });
            }
        }
        Ok(Self { items })
    }

    /// Builds a plan and validates it against a scenario: ids in range and
    /// the prefix `K` fits strictly within the viewing time (construction 1).
    pub fn admissible(items: Vec<ItemId>, scenario: &Scenario) -> Result<Self, ModelError> {
        let plan = Self::new(items)?;
        for &i in &plan.items {
            scenario.check_item(i)?;
        }
        if !plan.items.is_empty() {
            let prefix_time: f64 = plan.items[..plan.items.len() - 1]
                .iter()
                .map(|&i| scenario.retrieval(i))
                .sum();
            if prefix_time >= scenario.viewing() && prefix_time > 0.0 {
                return Err(ModelError::InadmissiblePlan {
                    prefix_time,
                    viewing: scenario.viewing(),
                });
            }
        }
        Ok(plan)
    }

    /// Items in prefetch order.
    #[inline]
    pub fn items(&self) -> &[ItemId] {
        &self.items
    }

    /// Number of items in the plan, `|F|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when the plan prefetches nothing.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The last item `z` — the only one allowed to stretch.
    #[inline]
    pub fn last(&self) -> Option<ItemId> {
        self.items.last().copied()
    }

    /// The prefix `K = F \ ⟨z⟩` of items that complete within `v`.
    #[inline]
    pub fn prefix(&self) -> &[ItemId] {
        if self.items.is_empty() {
            &[]
        } else {
            &self.items[..self.items.len() - 1]
        }
    }

    /// Whether the plan contains an item.
    #[inline]
    pub fn contains(&self, id: ItemId) -> bool {
        self.items.contains(&id)
    }

    /// Total retrieval time `Σ_{i∈F} r_i` under a scenario.
    pub fn total_retrieval(&self, scenario: &Scenario) -> f64 {
        self.items.iter().map(|&i| scenario.retrieval(i)).sum()
    }

    /// Consumes the plan, returning the item ids in prefetch order.
    pub fn into_items(self) -> Vec<ItemId> {
        self.items
    }
}

impl From<PrefetchPlan> for Vec<ItemId> {
    fn from(p: PrefetchPlan) -> Self {
        p.items
    }
}

impl<'a> IntoIterator for &'a PrefetchPlan {
    type Item = &'a ItemId;
    type IntoIter = std::slice::Iter<'a, ItemId>;
    fn into_iter(self) -> Self::IntoIter {
        self.items.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s() -> Scenario {
        Scenario::new(vec![0.5, 0.3, 0.2], vec![8.0, 6.0, 9.0], 10.0).unwrap()
    }

    #[test]
    fn empty_plan() {
        let p = PrefetchPlan::empty();
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
        assert_eq!(p.last(), None);
        assert_eq!(p.prefix(), &[] as &[ItemId]);
        assert_eq!(p.total_retrieval(&s()), 0.0);
    }

    #[test]
    fn prefix_and_last() {
        let p = PrefetchPlan::new(vec![1, 0, 2]).unwrap();
        assert_eq!(p.prefix(), &[1, 0]);
        assert_eq!(p.last(), Some(2));
        assert!(p.contains(0));
        assert!(!p.contains(7));
    }

    #[test]
    fn rejects_duplicates() {
        assert!(matches!(
            PrefetchPlan::new(vec![1, 2, 1]),
            Err(ModelError::DuplicateItem { id: 1 })
        ));
    }

    #[test]
    fn admissible_accepts_stretching_last_item() {
        // prefix r=8 < v=10; last item stretches (8+9 > 10) but is legal.
        let p = PrefetchPlan::admissible(vec![0, 2], &s()).unwrap();
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn admissible_rejects_overlong_prefix() {
        // prefix r = 8 + 6 = 14 >= v = 10.
        assert!(matches!(
            PrefetchPlan::admissible(vec![0, 1, 2], &s()),
            Err(ModelError::InadmissiblePlan { .. })
        ));
    }

    #[test]
    fn admissible_rejects_unknown_item() {
        assert!(matches!(
            PrefetchPlan::admissible(vec![5], &s()),
            Err(ModelError::UnknownItem { .. })
        ));
    }

    #[test]
    fn single_item_always_admissible_prefixwise() {
        // A single item has an empty prefix: always admissible even if it
        // stretches arbitrarily far.
        let tiny = Scenario::new(vec![1.0], vec![100.0], 0.5).unwrap();
        assert!(PrefetchPlan::admissible(vec![0], &tiny).is_ok());
    }

    #[test]
    fn total_retrieval_sums() {
        let p = PrefetchPlan::new(vec![0, 1]).unwrap();
        assert!((p.total_retrieval(&s()) - 14.0).abs() < 1e-12);
    }

    #[test]
    fn iteration_and_conversion() {
        let p = PrefetchPlan::new(vec![2, 0]).unwrap();
        let ids: Vec<ItemId> = (&p).into_iter().copied().collect();
        assert_eq!(ids, vec![2, 0]);
        let v: Vec<ItemId> = p.into();
        assert_eq!(v, vec![2, 0]);
    }
}
