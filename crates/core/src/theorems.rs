//! Executable statements of the paper's theorems, used by the unit and
//! property tests to keep the implementation honest.

use crate::gain::{gain_empty_cache, stretch_time, theorem3_delta};
use crate::scenario::{ItemId, Scenario};
use crate::skp::bound::upper_bound;
use crate::EPS;

/// **Theorem 1** (swap argument): for a *stretching* plan whose last item
/// does not have the minimum probability, moving a minimum-probability
/// member to the end never decreases the gain — provided the swapped order
/// is admissible. Returns the improved (or equal) ordering, or `None` when
/// the plan does not stretch, is already canonical at the tail, or the
/// swap is inadmissible.
pub fn theorem1_swap(s: &Scenario, plan: &[ItemId]) -> Option<Vec<ItemId>> {
    if plan.len() < 2 || stretch_time(s, plan) <= 0.0 {
        return None;
    }
    let z = *plan.last().expect("non-empty");
    let (&f_min, _) = plan
        .iter()
        .zip(plan.iter().map(|&i| s.prob(i)))
        .min_by(|a, b| a.1.total_cmp(&b.1))?;
    if f_min == z || s.prob(f_min) >= s.prob(z) {
        return None;
    }
    let mut swapped: Vec<ItemId> = plan.iter().copied().filter(|&i| i != f_min).collect();
    swapped.push(f_min);
    // Feasibility of the swapped order (the paper's proof omits this check;
    // see skp::brute for the consequences).
    let prefix: f64 = swapped[..swapped.len() - 1]
        .iter()
        .map(|&i| s.retrieval(i))
        .sum();
    if prefix >= s.viewing() {
        return None;
    }
    Some(swapped)
}

/// Checks the Theorem-1 inequality for a plan: the swapped ordering (when
/// it exists) has gain ≥ the original's.
pub fn theorem1_holds(s: &Scenario, plan: &[ItemId]) -> bool {
    match theorem1_swap(s, plan) {
        None => true,
        Some(swapped) => gain_empty_cache(s, &swapped) + EPS >= gain_empty_cache(s, plan),
    }
}

/// **Theorem 2 / Eq. 7**: the Dantzig bound dominates the gain of a plan.
pub fn theorem2_holds(s: &Scenario, plan: &[ItemId]) -> bool {
    upper_bound(s) + EPS >= gain_empty_cache(s, plan)
}

/// **Theorem 3**: the incremental formula agrees with the direct gain
/// difference when appending `z` to prefix `K`.
pub fn theorem3_holds(s: &Scenario, prefix: &[ItemId], z: ItemId) -> bool {
    let mut full = prefix.to_vec();
    full.push(z);
    let delta = theorem3_delta(s, prefix, z);
    let direct = gain_empty_cache(s, &full) - gain_empty_cache(s, prefix);
    (delta - direct).abs() < 1e-7
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sc() -> Scenario {
        Scenario::new(vec![0.5, 0.3, 0.2], vec![8.0, 6.0, 9.0], 10.0).unwrap()
    }

    #[test]
    fn swap_improves_bad_ordering() {
        let s = sc();
        // Plan ⟨2, 0⟩ stretches (9+8 > 10) and ends on the *higher*
        // probability item 0: Theorem 1 says ⟨0, 2⟩ (or better) exists.
        let swapped = theorem1_swap(&s, &[2, 0]).expect("swap applies");
        assert_eq!(*swapped.last().unwrap(), 2);
        assert!(theorem1_holds(&s, &[2, 0]));
    }

    #[test]
    fn swap_skips_non_stretching_plans() {
        let s = sc();
        assert!(theorem1_swap(&s, &[1]).is_none()); // fits: no stretch
        assert!(theorem1_holds(&s, &[1]));
    }

    #[test]
    fn swap_skips_canonical_tails() {
        let s = sc();
        // ⟨0, 2⟩ already ends on the lowest-probability member.
        assert!(theorem1_swap(&s, &[0, 2]).is_none());
    }

    #[test]
    fn theorem2_on_sample_plans() {
        let s = sc();
        for plan in [vec![], vec![0], vec![0, 2], vec![1, 0], vec![1, 2]] {
            assert!(theorem2_holds(&s, &plan), "plan {plan:?}");
        }
    }

    #[test]
    fn theorem3_on_sample_prefixes() {
        let s = sc();
        assert!(theorem3_holds(&s, &[], 0));
        assert!(theorem3_holds(&s, &[1], 0));
        assert!(theorem3_holds(&s, &[0], 2));
        assert!(theorem3_holds(&s, &[1], 2));
    }
}
