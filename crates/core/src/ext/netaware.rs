//! Network-usage-aware prefetching.
//!
//! Section 6: the SKP algorithm "will prefetch the lesser candidates if,
//! by doing so, it can improve the expected access time even by an
//! insignificant amount. A policy is needed to weigh the opposing goals of
//! maximising access improvement and minimising network usage."
//!
//! A prefetched item that is *not* requested wastes its whole retrieval
//! time of network capacity; the expected waste of a plan is
//! `W(F) = Σ_{i∈F} (1 − P_i) r_i`. This policy maximises
//!
//! ```text
//! g*(F) − μ · W(F)
//! ```
//!
//! which is the plain SKP objective with item profit transformed to
//! `P_i r_i − μ(1 − P_i) r_i`. The transformed profit density
//! `P_i(1 + μ) − μ` is increasing in `P_i`, so the canonical order is also
//! the density order and the corrected branch-and-bound applies unchanged.

use crate::plan::PrefetchPlan;
use crate::policy::Prefetcher;
use crate::scenario::Scenario;
use crate::skp::exact::solve_generalized;
use crate::skp::order::SortedView;
use crate::skp::SkpSolution;

/// Prefetcher maximising `g*(F) − μ·W(F)` where `W` is expected wasted
/// network time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkAwarePolicy {
    /// Price per unit of expected wasted retrieval time. `μ = 0` recovers
    /// plain SKP; large `μ` prefetches only near-certain items.
    pub mu: f64,
}

impl NetworkAwarePolicy {
    /// Creates the policy; `mu` must be non-negative and finite.
    ///
    /// # Panics
    /// Panics on a negative or non-finite `mu`.
    pub fn new(mu: f64) -> Self {
        assert!(
            mu.is_finite() && mu >= 0.0,
            "mu must be a finite non-negative price"
        );
        Self { mu }
    }

    /// Expected wasted network time of a plan: `Σ_{i∈F} (1 − P_i) r_i`.
    pub fn expected_waste(s: &Scenario, plan: &[usize]) -> f64 {
        plan.iter()
            .map(|&i| (1.0 - s.prob(i)) * s.retrieval(i))
            .sum()
    }

    /// Full solution over candidates.
    pub fn solve_candidates(&self, s: &Scenario, candidates: &[bool]) -> SkpSolution {
        let view = SortedView::with_candidates(s, candidates);
        let profits: Vec<f64> = (0..view.m())
            .map(|j| view.profit(j) - self.mu * (1.0 - view.p(j)) * view.r(j))
            .collect();
        solve_generalized(s, &view, &profits, 0.0)
    }
}

impl Prefetcher for NetworkAwarePolicy {
    fn name(&self) -> &str {
        "SKP network-aware"
    }

    fn plan_candidates(&self, s: &Scenario, candidates: &[bool]) -> PrefetchPlan {
        self.solve_candidates(s, candidates).plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gain::gain_empty_cache;

    const TOL: f64 = 1e-9;

    fn sc() -> Scenario {
        Scenario::new(vec![0.35, 0.3, 0.2, 0.15], vec![6.0, 7.0, 9.0, 2.0], 12.0).unwrap()
    }

    #[test]
    fn zero_mu_recovers_plain_skp() {
        let s = sc();
        let a = NetworkAwarePolicy::new(0.0).plan(&s);
        let b = crate::skp::solve_exact(&s).plan;
        assert_eq!(a.items(), b.items());
    }

    #[test]
    fn large_mu_prefetches_nothing_uncertain() {
        let s = sc();
        // With a huge waste price every item (P < 1) has negative value.
        let plan = NetworkAwarePolicy::new(1e9).plan(&s);
        assert!(plan.is_empty());
    }

    #[test]
    fn certain_items_survive_any_mu() {
        let s = Scenario::new(vec![1.0], vec![4.0], 10.0).unwrap();
        let plan = NetworkAwarePolicy::new(1e9).plan(&s);
        assert_eq!(plan.items(), &[0]);
    }

    #[test]
    fn waste_shrinks_as_mu_grows() {
        let s = sc();
        let mut last = f64::INFINITY;
        for mu in [0.0, 0.2, 1.0, 5.0] {
            let plan = NetworkAwarePolicy::new(mu).plan(&s);
            let w = NetworkAwarePolicy::expected_waste(&s, plan.items());
            assert!(w <= last + TOL, "waste must not grow with mu");
            last = w.min(last);
        }
    }

    #[test]
    fn internal_objective_matches_definition() {
        let s = sc();
        let pol = NetworkAwarePolicy::new(0.4);
        let sol = pol.solve_candidates(&s, &vec![true; s.n()]);
        let g = gain_empty_cache(&s, sol.plan.items());
        let w = NetworkAwarePolicy::expected_waste(&s, sol.plan.items());
        assert!(
            (sol.internal_gain - (g - 0.4 * w)).abs() < 1e-7,
            "internal {} vs g−μW {}",
            sol.internal_gain,
            g - 0.4 * w
        );
    }

    #[test]
    fn gain_never_negative_objective() {
        // The solver keeps the empty plan as incumbent, so the chosen
        // objective value is non-negative.
        let s = sc();
        for mu in [0.0, 0.5, 2.0] {
            let sol = NetworkAwarePolicy::new(mu).solve_candidates(&s, &vec![true; s.n()]);
            assert!(sol.internal_gain >= -TOL);
        }
    }

    #[test]
    #[should_panic(expected = "mu")]
    fn negative_mu_rejected() {
        let _ = NetworkAwarePolicy::new(-0.5);
    }
}
