//! Extensions the paper lists as current or future work (Section 6):
//!
//! - [`lookahead`] — the SKP algorithm "considers only one access ahead
//!   \[and\] the stretch time may intrude into the next viewing time";
//!   the stretch-penalised objective charges that intrusion a shadow
//!   price.
//! - [`twostep`] — true two-step lookahead over a forecast of the next
//!   round's scenario, searching the stretch-penalised parametric
//!   frontier ("looking ahead deeper will improve the performance").
//! - [`netaware`] — "a policy is needed to weigh the opposing goals of
//!   maximising access improvement and minimising network usage"; the
//!   network-aware objective taxes expected wasted retrieval time.
//! - [`sizes`] — "we assume uniform size for all items. We are currently
//!   addressing this limitation"; size-aware arbitration evicts by
//!   delay-profit density per byte.

pub mod lookahead;
pub mod netaware;
pub mod sizes;
pub mod twostep;

pub use lookahead::StretchPenalisedPolicy;
pub use netaware::NetworkAwarePolicy;
pub use sizes::{arbitrate_sized, SizedEntry};
pub use twostep::TwoStepPolicy;
