//! Stretch-penalised SKP: a cheap two-step lookahead.
//!
//! Plain SKP treats the viewing window as free and the stretch penalty as
//! the only cost of overrunning it. But the stretch also *intrudes into
//! the next viewing time* (Section 4.4), shrinking the window available to
//! the next prefetch round. This extension charges each unit of stretch an
//! extra shadow price `λ`:
//!
//! ```text
//! maximise   g*(F) − λ · st(F)
//! ```
//!
//! A principled `λ` is the marginal value of viewing time for the *next*
//! round, which by Theorem 2 equals the probability `P_z̃` of the next
//! round's critical item. [`shadow_price`] estimates it from a forecast
//! scenario; `λ = 0` recovers plain SKP.

use crate::plan::PrefetchPlan;
use crate::policy::Prefetcher;
use crate::scenario::Scenario;
use crate::skp::exact::solve_generalized;
use crate::skp::order::SortedView;
use crate::skp::SkpSolution;

/// Prefetcher maximising `g*(F) − λ·st(F)` with the corrected canonical
/// branch-and-bound.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StretchPenalisedPolicy {
    /// Shadow price per unit of stretch intruding into the next window.
    pub lambda: f64,
}

impl StretchPenalisedPolicy {
    /// Creates the policy; `lambda` must be non-negative and finite.
    ///
    /// # Panics
    /// Panics on a negative or non-finite `lambda`.
    pub fn new(lambda: f64) -> Self {
        assert!(
            lambda.is_finite() && lambda >= 0.0,
            "lambda must be a finite non-negative shadow price"
        );
        Self { lambda }
    }

    /// Full solution (plan + objective diagnostics) over candidates.
    pub fn solve_candidates(&self, s: &Scenario, candidates: &[bool]) -> SkpSolution {
        let view = SortedView::with_candidates(s, candidates);
        let profits: Vec<f64> = (0..view.m()).map(|j| view.profit(j)).collect();
        solve_generalized(s, &view, &profits, self.lambda)
    }
}

impl Prefetcher for StretchPenalisedPolicy {
    fn name(&self) -> &str {
        "SKP stretch-penalised"
    }

    fn plan_candidates(&self, s: &Scenario, candidates: &[bool]) -> PrefetchPlan {
        self.solve_candidates(s, candidates).plan
    }
}

/// Estimates the shadow price of viewing time for a forecast next-round
/// scenario: the probability of the critical (fractional) item in the
/// Dantzig solution — zero when everything fits (spare capacity is
/// worthless at the margin).
pub fn shadow_price(next_round: &Scenario) -> f64 {
    let lin = crate::skp::bound::linear_relaxation(next_round);
    lin.critical.map_or(0.0, |id| next_round.prob(id))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gain::{gain_empty_cache, stretch_time};

    const TOL: f64 = 1e-9;

    fn sc() -> Scenario {
        Scenario::new(vec![0.35, 0.3, 0.2, 0.15], vec![6.0, 7.0, 9.0, 2.0], 12.0).unwrap()
    }

    #[test]
    fn zero_lambda_recovers_plain_skp() {
        let s = sc();
        let a = StretchPenalisedPolicy::new(0.0).plan(&s);
        let b = crate::skp::solve_exact(&s).plan;
        assert_eq!(a.items(), b.items());
    }

    #[test]
    fn large_lambda_forbids_stretch() {
        let s = sc();
        let plan = StretchPenalisedPolicy::new(1e6).plan(&s);
        assert_eq!(stretch_time(&s, plan.items()), 0.0);
    }

    #[test]
    fn lambda_monotonically_shrinks_stretch() {
        let s = sc();
        let mut last_stretch = f64::INFINITY;
        for lambda in [0.0, 0.5, 2.0, 10.0] {
            let plan = StretchPenalisedPolicy::new(lambda).plan(&s);
            let st = stretch_time(&s, plan.items());
            assert!(
                st <= last_stretch + TOL,
                "stretch must not grow with lambda"
            );
            last_stretch = st.min(last_stretch);
        }
    }

    #[test]
    fn objective_accounts_for_penalty() {
        let s = sc();
        let pol = StretchPenalisedPolicy::new(0.7);
        let sol = pol.solve_candidates(&s, &vec![true; s.n()]);
        let st = stretch_time(&s, sol.plan.items());
        let expected = gain_empty_cache(&s, sol.plan.items()) - 0.7 * st;
        assert!(
            (sol.internal_gain - expected).abs() < 1e-7,
            "internal {} vs expected {}",
            sol.internal_gain,
            expected
        );
    }

    #[test]
    fn shadow_price_zero_when_everything_fits() {
        let s = Scenario::new(vec![0.5, 0.5], vec![1.0, 1.0], 10.0).unwrap();
        assert_eq!(shadow_price(&s), 0.0);
    }

    #[test]
    fn shadow_price_is_critical_item_probability() {
        let s = Scenario::new(vec![0.5, 0.3, 0.2], vec![8.0, 6.0, 9.0], 10.0).unwrap();
        // Dantzig splits item 1 (P = 0.3).
        assert!((shadow_price(&s) - 0.3).abs() < TOL);
    }

    #[test]
    #[should_panic(expected = "lambda")]
    fn negative_lambda_rejected() {
        let _ = StretchPenalisedPolicy::new(-1.0);
    }
}
