//! Unequal item sizes — the limitation the paper says it is "currently
//! addressing" (Section 6).
//!
//! With equal sizes Figure 6 pairs one newcomer with one victim. With
//! sizes, a newcomer of size `s_f` must free at least `s_f` bytes, and the
//! natural generalisation of Pr-arbitration compares the newcomer's delay
//! profit against the *sum* of its victims' delay profits, choosing
//! victims by ascending delay-profit density `P_d r_d / s_d` (evict the
//! least valuable bytes first).

use crate::scenario::{ItemId, Scenario};
use crate::ModelError;

/// A cache entry with an explicit size in bytes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SizedEntry {
    /// Item id.
    pub id: ItemId,
    /// Item size in bytes (must be positive).
    pub size: f64,
}

/// Outcome of size-aware arbitration.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SizedArbitration {
    /// Admitted prefetch items, in tentative-plan order.
    pub prefetch: Vec<ItemId>,
    /// All ejected items.
    pub eject: Vec<ItemId>,
}

/// Size-aware Pr-arbitration.
///
/// `tentative` is the solver's plan over non-cached items with their sizes;
/// `cache` the current entries; `free_bytes` the unused capacity. Each
/// tentative item (in descending delay profit) is admitted when the free
/// bytes plus the cheapest sufficient victim set can host it **and** its
/// delay profit strictly exceeds the victims' total.
///
/// Returns an error if any size is non-positive or NaN.
pub fn arbitrate_sized(
    s: &Scenario,
    tentative: &[SizedEntry],
    cache: &[SizedEntry],
    free_bytes: f64,
    capacity_bytes: f64,
) -> Result<SizedArbitration, ModelError> {
    for (idx, e) in tentative.iter().chain(cache.iter()).enumerate() {
        if !e.size.is_finite() || e.size <= 0.0 {
            return Err(ModelError::BadSize {
                index: idx,
                value: e.size,
            });
        }
    }

    // Victims in ascending delay-profit density: cheapest bytes first.
    let mut live: Vec<SizedEntry> = cache.to_vec();
    live.sort_by(|a, b| {
        let da = s.delay_profit(a.id) / a.size;
        let db = s.delay_profit(b.id) / b.size;
        da.total_cmp(&db)
    });

    // Newcomers in descending delay profit.
    let mut order: Vec<usize> = (0..tentative.len()).collect();
    order.sort_by(|&a, &b| {
        s.delay_profit(tentative[b].id)
            .total_cmp(&s.delay_profit(tentative[a].id))
    });

    let mut free = free_bytes;
    let mut out = SizedArbitration::default();

    for idx in order {
        let f = tentative[idx];
        if f.size > capacity_bytes {
            continue; // can never fit
        }
        if f.size <= free {
            free -= f.size;
            out.prefetch.push(f.id);
            continue;
        }
        // Accumulate cheapest victims until the item fits.
        let mut need = f.size - free;
        let mut victims: Vec<usize> = Vec::new();
        let mut victim_profit = 0.0;
        for (vi, v) in live.iter().enumerate() {
            if need <= 0.0 {
                break;
            }
            victims.push(vi);
            victim_profit += s.delay_profit(v.id);
            need -= v.size;
        }
        if need > 0.0 {
            break; // cache cannot host this item even if emptied
        }
        // Worth test: newcomer must strictly beat the evicted set.
        if s.delay_profit(f.id) <= victim_profit {
            break;
        }
        // Commit: record victims in eviction (density) order, then remove
        // them from `live` back-to-front so indices stay valid.
        let freed: f64 = victims.iter().map(|&vi| live[vi].size).sum();
        for &vi in victims.iter() {
            out.eject.push(live[vi].id);
        }
        for &vi in victims.iter().rev() {
            live.remove(vi);
        }
        free = free + freed - f.size;
        out.prefetch.push(f.id);
    }

    // Preserve tentative order for the admitted items.
    let admitted: std::collections::HashSet<ItemId> = out.prefetch.iter().copied().collect();
    out.prefetch = tentative
        .iter()
        .map(|e| e.id)
        .filter(|id| admitted.contains(id))
        .collect();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sc() -> Scenario {
        Scenario::new(
            vec![0.4, 0.3, 0.2, 0.1, 0.0],
            vec![10.0, 8.0, 6.0, 4.0, 5.0],
            20.0,
        )
        .unwrap()
    }

    fn e(id: ItemId, size: f64) -> SizedEntry {
        SizedEntry { id, size }
    }

    #[test]
    fn fits_in_free_space_without_eviction() {
        let s = sc();
        let out = arbitrate_sized(&s, &[e(0, 3.0)], &[e(4, 5.0)], 4.0, 9.0).unwrap();
        assert_eq!(out.prefetch, vec![0]);
        assert!(out.eject.is_empty());
    }

    #[test]
    fn evicts_cheapest_density_victims() {
        let s = sc();
        // Newcomer item 0 (profit 4.0, size 6) must evict; victims: item 4
        // (profit 0, size 5) and item 3 (profit 0.4, size 5). Cheapest
        // density is item 4, then item 3.
        let out = arbitrate_sized(&s, &[e(0, 6.0)], &[e(4, 5.0), e(3, 5.0)], 0.0, 10.0).unwrap();
        assert_eq!(out.prefetch, vec![0]);
        assert_eq!(out.eject, vec![4, 3]);
    }

    #[test]
    fn refuses_when_victims_worth_more() {
        let s = sc();
        // Newcomer item 3 (profit 0.4) against cached item 0 (profit 4.0).
        let out = arbitrate_sized(&s, &[e(3, 5.0)], &[e(0, 5.0)], 0.0, 5.0).unwrap();
        assert!(out.prefetch.is_empty());
        assert!(out.eject.is_empty());
    }

    #[test]
    fn oversized_item_skipped_not_fatal() {
        let s = sc();
        // Item 0 larger than the whole cache is skipped; item 2 admitted.
        let out = arbitrate_sized(&s, &[e(0, 100.0), e(2, 2.0)], &[e(4, 5.0)], 0.0, 5.0).unwrap();
        assert_eq!(out.prefetch, vec![2]);
    }

    #[test]
    fn equal_sizes_reduce_to_pairwise_arbitration() {
        let s = sc();
        // Unit sizes: behaves like Figure 6 (one victim per newcomer).
        let out = arbitrate_sized(
            &s,
            &[e(0, 1.0), e(1, 1.0)],
            &[e(3, 1.0), e(4, 1.0)],
            0.0,
            2.0,
        )
        .unwrap();
        assert_eq!(out.prefetch, vec![0, 1]);
        assert_eq!(out.eject.len(), 2);
    }

    #[test]
    fn rejects_bad_sizes() {
        let s = sc();
        assert!(arbitrate_sized(&s, &[e(0, 0.0)], &[], 1.0, 1.0).is_err());
        assert!(arbitrate_sized(&s, &[e(0, f64::NAN)], &[], 1.0, 1.0).is_err());
    }

    #[test]
    fn preserves_tentative_order() {
        let s = sc();
        // Tentative ⟨2, 0⟩ (stretch order); both admitted into free space.
        let out = arbitrate_sized(&s, &[e(2, 1.0), e(0, 1.0)], &[], 2.0, 2.0).unwrap();
        assert_eq!(out.prefetch, vec![2, 0]);
    }
}
