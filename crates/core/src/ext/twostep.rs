//! True two-step lookahead — the paper's main future-work item
//! (Section 6: "Obviously, looking ahead deeper will improve the
//! performance. However, the complexity of the problem can be daunting").
//!
//! The one-step SKP objective ignores that this round's stretch consumes
//! network time the *next* round's prefetches needed. Given a forecast of
//! the scenario that follows each possible access `α` (e.g. a Markov
//! row), the two-step objective is
//!
//! ```text
//! score(F) = g*(F) + γ · Σ_α P_α · V(next(α) ↓ st(F))
//! ```
//!
//! where `next(α) ↓ st` is the follow-up scenario with its viewing window
//! shrunk by this round's stretch, and `V` values a scenario either by
//! the Eq. 7 Dantzig bound (fast, optimistic) or by the exact canonical
//! gain (slower, tight).
//!
//! Searching all plans is the daunting part; we search the **parametric
//! frontier** instead: the stretch-penalised solutions
//! `argmax g*(F) − λ·st(F)` for a grid of shadow prices `λ` (λ = 0 is
//! plain SKP; λ → ∞ never stretches). The frontier contains the plans
//! that trade first-round gain against stretch optimally, and scoring a
//! handful of them with the two-step objective keeps the cost at a few
//! SKP solves per decision.

use crate::plan::PrefetchPlan;
use crate::policy::Prefetcher;
use crate::scenario::{ItemId, Scenario};
use crate::skp::bound::upper_bound;
use crate::skp::exact::solve_generalized;
use crate::skp::order::SortedView;
use crate::skp::solve_exact;

/// How the follow-up scenario is valued.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ValueFn {
    /// The Eq. 7 Dantzig upper bound — cheap and monotone in the window.
    #[default]
    DantzigBound,
    /// The exact canonical-space gain — one branch-and-bound per
    /// evaluation.
    ExactGain,
}

impl ValueFn {
    /// Value of facing `s` next round.
    pub fn value(&self, s: &Scenario) -> f64 {
        match self {
            ValueFn::DantzigBound => upper_bound(s),
            ValueFn::ExactGain => solve_exact(s).gain,
        }
    }
}

/// The default shadow-price grid defining the candidate-plan frontier.
pub const DEFAULT_LAMBDAS: [f64; 6] = [0.0, 0.25, 0.5, 1.0, 2.0, 8.0];

/// Two-step lookahead prefetcher.
///
/// `next_scenario(α)` forecasts the scenario the prefetcher will face
/// after the user accesses `α` — its viewing time is `α`'s viewing time,
/// its probabilities the follow-up access distribution. This round's
/// stretch is subtracted from that window before valuing it.
pub struct TwoStepPolicy<F>
where
    F: Fn(ItemId) -> Scenario,
{
    next_scenario: F,
    /// Weight `γ` on the next round's value (1 = risk-neutral).
    pub discount: f64,
    /// Valuation of follow-up scenarios.
    pub value_fn: ValueFn,
    /// Shadow-price grid generating candidate plans.
    pub lambdas: Vec<f64>,
}

impl<F> TwoStepPolicy<F>
where
    F: Fn(ItemId) -> Scenario,
{
    /// Creates a two-step policy with default grid, discount 1 and
    /// Dantzig valuation.
    pub fn new(next_scenario: F) -> Self {
        Self {
            next_scenario,
            discount: 1.0,
            value_fn: ValueFn::DantzigBound,
            lambdas: DEFAULT_LAMBDAS.to_vec(),
        }
    }

    /// Scores one concrete plan under the two-step objective.
    pub fn score(&self, s: &Scenario, plan: &[ItemId]) -> f64 {
        let g1 = crate::gain::gain_empty_cache(s, plan);
        let st = crate::gain::stretch_time(s, plan);
        let mut future = 0.0;
        for alpha in 0..s.n() {
            let p = s.prob(alpha);
            if p <= 0.0 {
                continue;
            }
            let next = (self.next_scenario)(alpha);
            let shrunk = next
                .with_viewing((next.viewing() - st).max(0.0))
                .expect("non-negative viewing");
            future += p * self.value_fn.value(&shrunk);
        }
        g1 + self.discount * future
    }

    /// The candidate frontier: one stretch-penalised solution per λ,
    /// deduplicated, plus the empty plan.
    fn candidates(&self, s: &Scenario, candidates: &[bool]) -> Vec<PrefetchPlan> {
        let view = SortedView::with_candidates(s, candidates);
        let profits: Vec<f64> = (0..view.m()).map(|j| view.profit(j)).collect();
        let mut out: Vec<PrefetchPlan> = vec![PrefetchPlan::empty()];
        for &lambda in &self.lambdas {
            let plan = solve_generalized(s, &view, &profits, lambda).plan;
            if !out.contains(&plan) {
                out.push(plan);
            }
        }
        out
    }
}

impl<F> Prefetcher for TwoStepPolicy<F>
where
    F: Fn(ItemId) -> Scenario + Send + Sync,
{
    fn name(&self) -> &str {
        "SKP two-step"
    }

    fn plan_candidates(&self, s: &Scenario, candidates: &[bool]) -> PrefetchPlan {
        self.candidates(s, candidates)
            .into_iter()
            .map(|plan| {
                let score = self.score(s, plan.items());
                (plan, score)
            })
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(plan, _)| plan)
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gain::stretch_time;
    use crate::policy::PolicyKind;

    /// A follow-up world that is worthless: two-step must reduce to the
    /// plain one-step optimum.
    #[test]
    fn worthless_future_reduces_to_plain_skp() {
        let s = Scenario::new(vec![0.35, 0.3, 0.2, 0.15], vec![6.0, 7.0, 9.0, 2.0], 12.0).unwrap();
        // Next round has zero viewing time: nothing to protect.
        let next = move |_alpha: usize| Scenario::new(vec![1.0], vec![5.0], 0.0).unwrap();
        let two = TwoStepPolicy::new(next);
        let plain = PolicyKind::SkpExact.plan(&s);
        let chosen = two.plan(&s);
        let g_two = crate::gain::gain_empty_cache(&s, chosen.items());
        let g_plain = crate::gain::gain_empty_cache(&s, plain.items());
        assert!(
            (g_two - g_plain).abs() < 1e-9,
            "with no future value the one-step gain must be preserved"
        );
    }

    /// A valuable, fragile future: the next window is exactly big enough
    /// for a near-certain fetch, and any stretch now destroys it. The
    /// two-step policy must stretch less than plain SKP.
    #[test]
    fn fragile_future_suppresses_stretch() {
        // One-step: item 1 stretches profitably (plain SKP takes it).
        let s = Scenario::new(vec![0.55, 0.45], vec![6.0, 8.0], 7.0).unwrap();
        let plain = PolicyKind::SkpExact.plan(&s);
        assert!(
            stretch_time(&s, plain.items()) > 0.0,
            "premise: plain stretches"
        );

        // Next round: a P=1 item that exactly fits its window of 10.
        let next = move |_alpha: usize| Scenario::new(vec![1.0], vec![10.0], 10.0).unwrap();
        let two = TwoStepPolicy::new(next);
        let chosen = two.plan(&s);
        assert!(
            stretch_time(&s, chosen.items()) < stretch_time(&s, plain.items()),
            "two-step must protect the fragile next round: chose {:?}",
            chosen
        );
    }

    /// The two-step score itself ranks a non-stretching plan above a
    /// stretching one when the future is fragile — independent of the
    /// candidate search.
    #[test]
    fn score_orders_plans_correctly() {
        let s = Scenario::new(vec![0.55, 0.45], vec![6.0, 8.0], 7.0).unwrap();
        let next = move |_alpha: usize| Scenario::new(vec![1.0], vec![10.0], 10.0).unwrap();
        let two = TwoStepPolicy::new(next);
        let conservative = two.score(&s, &[0]);
        let aggressive = two.score(&s, &[0, 1]); // st = 7
        assert!(
            conservative > aggressive,
            "conservative {conservative} vs aggressive {aggressive}"
        );
    }

    #[test]
    fn exact_value_function_agrees_on_simple_worlds() {
        let next =
            move |_alpha: usize| Scenario::new(vec![0.8, 0.2], vec![4.0, 20.0], 5.0).unwrap();
        let s = Scenario::new(vec![0.5, 0.5], vec![3.0, 4.0], 10.0).unwrap();
        let mut two = TwoStepPolicy::new(next);
        let a = two.plan(&s);
        two.value_fn = ValueFn::ExactGain;
        let b = two.plan(&s);
        // Both value functions agree that the fitting plan is best here.
        assert_eq!(a.items(), b.items());
    }

    #[test]
    fn zero_discount_ignores_future() {
        let s = Scenario::new(vec![0.55, 0.45], vec![6.0, 8.0], 7.0).unwrap();
        let next = move |_alpha: usize| Scenario::new(vec![1.0], vec![10.0], 10.0).unwrap();
        let mut two = TwoStepPolicy::new(next);
        two.discount = 0.0;
        let chosen = two.plan(&s);
        let plain = PolicyKind::SkpExact.plan(&s);
        let g_two = crate::gain::gain_empty_cache(&s, chosen.items());
        let g_plain = crate::gain::gain_empty_cache(&s, plain.items());
        assert!((g_two - g_plain).abs() < 1e-9);
    }

    #[test]
    fn respects_candidate_mask() {
        let s = Scenario::new(vec![0.6, 0.4], vec![3.0, 3.0], 10.0).unwrap();
        let next = move |_alpha: usize| Scenario::new(vec![1.0], vec![2.0], 5.0).unwrap();
        let two = TwoStepPolicy::new(next);
        let plan = two.plan_candidates(&s, &[false, true]);
        assert!(!plan.contains(0));
    }
}
