//! Property-based tests for the model formulas, theorems and solvers.
//!
//! Scenarios are drawn to match the paper's workload ranges (`r ∈ [1,30]`,
//! `v ∈ [0,50]`, `n ≤ 10`) so that the brute-force oracle stays cheap.

use proptest::prelude::*;
use skp_core::gain::{
    expected_access_time_cached, expected_access_time_empty, expected_no_prefetch_cached,
    gain_empty_cache, gain_with_cache, stretch_time,
};
use skp_core::kp::{solve_kp, solve_kp_dp};
use skp_core::skp::{solve_exact, solve_global, solve_optimal, solve_paper, upper_bound};
use skp_core::theorems::{theorem1_holds, theorem2_holds, theorem3_holds};
use skp_core::{PrefetchPlan, Scenario};

const TOL: f64 = 1e-7;

/// Random scenario with n in [1, 10], integer retrievals in [1, 30],
/// integer viewing in [0, 50], probabilities normalised random weights.
fn scenario_strategy() -> impl Strategy<Value = Scenario> {
    (1usize..=10)
        .prop_flat_map(|n| {
            (
                proptest::collection::vec(1u32..=100, n),
                proptest::collection::vec(1u32..=30, n),
                0u32..=50,
            )
        })
        .prop_map(|(weights, retrievals, v)| {
            let w: Vec<f64> = weights.iter().map(|&x| x as f64).collect();
            let r: Vec<f64> = retrievals.iter().map(|&x| x as f64).collect();
            Scenario::from_weights(w, r, v as f64).expect("valid scenario")
        })
}

/// A random admissible plan for a scenario: take a random subset in a
/// random order, then truncate at the first item that overruns (that item
/// becomes the stretching tail).
fn random_plan(s: &Scenario, picks: &[usize]) -> Vec<usize> {
    let mut seen = std::collections::HashSet::new();
    let mut plan = Vec::new();
    let mut used = 0.0;
    for &p in picks {
        let id = p % s.n();
        if !seen.insert(id) {
            continue;
        }
        plan.push(id);
        used += s.retrieval(id);
        if used >= s.viewing() {
            break; // this item stretches (or exactly fills): stop here
        }
    }
    plan
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Eq. 3 is the definition g* = E[T(no prefetch)] − E[T(prefetch)].
    #[test]
    fn gain_formula_matches_definition(s in scenario_strategy(), picks in proptest::collection::vec(0usize..32, 0..8)) {
        let plan = random_plan(&s, &picks);
        let g = gain_empty_cache(&s, &plan);
        let direct = s.expected_no_prefetch() - expected_access_time_empty(&s, &plan);
        prop_assert!((g - direct).abs() < TOL, "g {} vs direct {}", g, direct);
    }

    /// Theorem 1: swapping a minimum-probability member to the tail never
    /// hurts (when admissible).
    #[test]
    fn theorem1(s in scenario_strategy(), picks in proptest::collection::vec(0usize..32, 0..8)) {
        let plan = random_plan(&s, &picks);
        prop_assert!(theorem1_holds(&s, &plan));
    }

    /// Theorem 2 / Eq. 7: the Dantzig bound dominates every plan's gain.
    #[test]
    fn theorem2(s in scenario_strategy(), picks in proptest::collection::vec(0usize..32, 0..8)) {
        let plan = random_plan(&s, &picks);
        prop_assert!(theorem2_holds(&s, &plan));
    }

    /// Theorem 3: incremental gain equals the direct difference.
    #[test]
    fn theorem3(s in scenario_strategy(), picks in proptest::collection::vec(0usize..32, 0..8), z in 0usize..32) {
        let plan = random_plan(&s, &picks);
        let z = z % s.n();
        // Use the plan as prefix K only when it does not stretch and does
        // not contain z (construction 1).
        if !plan.contains(&z) && stretch_time(&s, &plan) == 0.0 {
            let prefix_r: f64 = plan.iter().map(|&i| s.retrieval(i)).sum();
            if prefix_r < s.viewing() {
                prop_assert!(theorem3_holds(&s, &plan, z));
            }
        }
    }

    /// Solver hierarchy: optimal ≥ exact ≥ paper (in true gain), all within
    /// the Eq. 7 bound and non-negative for the oracle; the global DP
    /// equals the exhaustive oracle on these integral instances.
    #[test]
    fn solver_hierarchy(s in scenario_strategy()) {
        let paper = solve_paper(&s);
        let exact = solve_exact(&s);
        let optimal = solve_optimal(&s);
        let global = solve_global(&s).expect("integral instance");
        prop_assert!(exact.gain >= paper.gain - TOL, "exact {} < paper {}", exact.gain, paper.gain);
        prop_assert!(optimal.gain >= exact.gain - TOL, "optimal {} < exact {}", optimal.gain, exact.gain);
        prop_assert!((global.gain - optimal.gain).abs() < TOL,
            "global {} != brute {}", global.gain, optimal.gain);
        prop_assert!(optimal.gain >= -TOL);
        let ub = upper_bound(&s);
        prop_assert!(optimal.gain <= ub + TOL, "optimal {} exceeds bound {}", optimal.gain, ub);
        // Internal accounting of the exact solver is honest.
        prop_assert!((exact.internal_gain - exact.gain).abs() < TOL);
    }

    /// Every solver returns an admissible plan (construction 1).
    #[test]
    fn solver_plans_admissible(s in scenario_strategy()) {
        for sol in [solve_paper(&s), solve_exact(&s), solve_optimal(&s)] {
            prop_assert!(PrefetchPlan::admissible(sol.plan.items().to_vec(), &s).is_ok(),
                "inadmissible plan {:?}", sol.plan);
        }
    }

    /// SKP (exact) dominates KP: the knapsack solution is feasible for SKP.
    #[test]
    fn skp_dominates_kp(s in scenario_strategy()) {
        let kp = solve_kp(&s);
        let skp = solve_exact(&s);
        prop_assert!(skp.gain >= kp.profit - TOL, "skp {} < kp {}", skp.gain, kp.profit);
    }

    /// KP branch-and-bound equals the DP oracle on integral instances.
    #[test]
    fn kp_bb_equals_dp(s in scenario_strategy()) {
        let bb = solve_kp(&s);
        let dp = solve_kp_dp(&s).expect("integral instance");
        prop_assert!((bb.profit - dp.profit).abs() < TOL, "bb {} vs dp {}", bb.profit, dp.profit);
    }

    /// Both KP solvers equal a brute-force subset enumeration.
    #[test]
    fn kp_equals_subset_enumeration(s in scenario_strategy()) {
        let n = s.n();
        let mut best = 0.0_f64;
        for mask in 0u32..(1 << n) {
            let mut weight = 0.0;
            let mut profit = 0.0;
            for i in 0..n {
                if mask & (1 << i) != 0 {
                    weight += s.retrieval(i);
                    profit += s.delay_profit(i);
                }
            }
            if weight <= s.viewing() && profit > best {
                best = profit;
            }
        }
        let bb = solve_kp(&s);
        prop_assert!((bb.profit - best).abs() < TOL, "bb {} vs brute {}", bb.profit, best);
    }

    /// KP plans never stretch.
    #[test]
    fn kp_respects_capacity(s in scenario_strategy()) {
        let kp = solve_kp(&s);
        prop_assert!(kp.plan.total_retrieval(&s) <= s.viewing() + TOL);
    }

    /// Eq. 9 identity: g(F, D) = E[T(np)] − E[T(F ejects D)], with the
    /// cache and ejections drawn at random.
    #[test]
    fn cache_gain_matches_definition(
        s in scenario_strategy(),
        cache_picks in proptest::collection::vec(0usize..32, 0..6),
        eject_sel in proptest::collection::vec(proptest::bool::ANY, 6),
        plan_picks in proptest::collection::vec(0usize..32, 0..6),
    ) {
        // Build a cache (unique ids) and an ejection subset of it.
        let mut cache: Vec<usize> = Vec::new();
        for &p in &cache_picks {
            let id = p % s.n();
            if !cache.contains(&id) {
                cache.push(id);
            }
        }
        let eject: Vec<usize> = cache
            .iter()
            .enumerate()
            .filter(|(k, _)| eject_sel.get(*k).copied().unwrap_or(false))
            .map(|(_, &id)| id)
            .collect();
        // Plan over non-cached items only.
        let raw = random_plan(&s, &plan_picks);
        let plan: Vec<usize> = raw.into_iter().filter(|i| !cache.contains(i)).collect();

        let g = gain_with_cache(&s, &plan, &cache, &eject);
        let direct = expected_no_prefetch_cached(&s, &cache)
            - expected_access_time_cached(&s, &plan, &cache, &eject);
        prop_assert!((g - direct).abs() < TOL, "g {} vs direct {}", g, direct);
    }

    /// The linear relaxation bound is tight for instances where everything
    /// fits: bound equals the full-inclusion gain.
    #[test]
    fn bound_tight_when_all_fit(s in scenario_strategy()) {
        let total_r: f64 = (0..s.n()).map(|i| s.retrieval(i)).sum();
        if total_r <= s.viewing() {
            let all: Vec<usize> = (0..s.n()).collect();
            let g = gain_empty_cache(&s, &all);
            prop_assert!((upper_bound(&s) - g).abs() < TOL);
        }
    }
}

/// Reduced-mass scenarios (Σ P < 1, the Section-5 situation where some
/// probability rests on cached items) and candidate-restricted solving.
mod reduced_mass_props {
    use super::*;
    use skp_core::skp::brute::solve_optimal_candidates;
    use skp_core::skp::{solve_exact_candidates, solve_paper_candidates};

    /// Scenario with total mass scaled to ~0.6.
    fn reduced_scenario() -> impl Strategy<Value = Scenario> {
        (2usize..=8)
            .prop_flat_map(|n| {
                (
                    proptest::collection::vec(1u32..=100, n),
                    proptest::collection::vec(1u32..=30, n),
                    0u32..=50,
                )
            })
            .prop_map(|(weights, retrievals, v)| {
                let sum: f64 = weights.iter().map(|&x| x as f64).sum();
                let probs: Vec<f64> = weights.iter().map(|&x| 0.6 * x as f64 / sum).collect();
                let r: Vec<f64> = retrievals.iter().map(|&x| x as f64).collect();
                Scenario::new(probs, r, v as f64).expect("valid scenario")
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// The solver hierarchy and the global DP's exactness survive
        /// reduced probability mass (the uncovered mass pays the stretch).
        #[test]
        fn hierarchy_under_reduced_mass(s in reduced_scenario()) {
            let paper = solve_paper(&s);
            let exact = solve_exact(&s);
            let brute = solve_optimal(&s);
            let global = solve_global(&s).expect("integral instance");
            prop_assert!(exact.gain >= paper.gain - TOL);
            prop_assert!(brute.gain >= exact.gain - TOL);
            prop_assert!((global.gain - brute.gain).abs() < TOL,
                "global {} vs brute {}", global.gain, brute.gain);
            prop_assert!(brute.gain >= -TOL);
        }

        /// Candidate-restricted branch-and-bound against the restricted
        /// brute oracle, with the full scenario's mass paying penalties.
        #[test]
        fn candidate_restriction_hierarchy(
            s in reduced_scenario(),
            mask_bits in proptest::collection::vec(proptest::bool::ANY, 8),
        ) {
            let mask: Vec<bool> = (0..s.n())
                .map(|i| mask_bits.get(i).copied().unwrap_or(true))
                .collect();
            if !mask.iter().any(|&b| b) {
                return Ok(()); // no candidates: nothing to test
            }
            let paper = solve_paper_candidates(&s, &mask);
            let exact = solve_exact_candidates(&s, &mask);
            let brute = solve_optimal_candidates(&s, &mask);
            for sol in [&paper, &exact, &brute] {
                for &i in sol.plan.items() {
                    prop_assert!(mask[i], "mask violated by item {}", i);
                }
            }
            prop_assert!(exact.gain >= paper.gain - TOL);
            prop_assert!(brute.gain >= exact.gain - TOL);
        }
    }
}

/// Arbitration invariants under random caches.
mod arbitration_props {
    use super::*;
    use skp_core::arbitration::{arbitrate, CacheEntry, SubArbitration};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn arbitration_invariants(
            s in scenario_strategy(),
            cache_picks in proptest::collection::vec((0usize..32, 0u64..20), 0..6),
            free in 0usize..3,
            sub_pick in 0u8..3,
        ) {
            let sub = match sub_pick {
                0 => SubArbitration::None,
                1 => SubArbitration::Lfu,
                _ => SubArbitration::DelaySaving,
            };
            let mut cache: Vec<CacheEntry> = Vec::new();
            for &(p, f) in &cache_picks {
                let id = p % s.n();
                if !cache.iter().any(|e| e.id == id) {
                    cache.push(CacheEntry { id, freq: f });
                }
            }
            let candidates: Vec<bool> =
                (0..s.n()).map(|i| !cache.iter().any(|e| e.id == i)).collect();
            let tentative = skp_core::skp::solve_paper_candidates(&s, &candidates).plan;
            let a = arbitrate(&s, &tentative, &cache, free, sub);

            // Ejections pair with prefetches beyond the free slots.
            prop_assert!(a.eject.len() <= a.prefetch.len());
            prop_assert!(a.prefetch.len() <= tentative.len());
            prop_assert!(a.eject.len() + free >= a.prefetch.len().min(a.eject.len() + free));
            // Every ejected item was cached; every prefetched item was in
            // the tentative plan and not cached.
            for d in &a.eject {
                prop_assert!(cache.iter().any(|e| e.id == *d));
            }
            for f_id in &a.prefetch {
                prop_assert!(tentative.contains(*f_id));
                prop_assert!(!cache.iter().any(|e| e.id == *f_id));
            }
            // No duplicates anywhere.
            let mut e = a.eject.clone();
            e.sort_unstable();
            e.dedup();
            prop_assert_eq!(e.len(), a.eject.len());
        }
    }
}
