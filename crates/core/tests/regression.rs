//! Golden-value regression tests: hand-computed optima for concrete
//! instances, pinned so solver refactors cannot silently change
//! behaviour. Every expected value below was derived by hand from the
//! paper's formulas (and double-checked against the exhaustive oracle).

use skp_core::gain::{expected_access_time_empty, gain_empty_cache, gain_with_cache, stretch_time};
use skp_core::kp::{greedy_by_density, solve_kp};
use skp_core::skp::{
    linear_relaxation, solve_exact, solve_global, solve_optimal, solve_paper, upper_bound,
};
use skp_core::Scenario;

const TOL: f64 = 1e-9;

/// The running example of this repository:
/// P = (0.5, 0.3, 0.2), r = (8, 6, 9), v = 10.
fn running_example() -> Scenario {
    Scenario::new(vec![0.5, 0.3, 0.2], vec![8.0, 6.0, 9.0], 10.0).unwrap()
}

#[test]
fn running_example_closed_forms() {
    let s = running_example();
    // E[T no prefetch] = 0.5·8 + 0.3·6 + 0.2·9 = 7.6.
    assert!((s.expected_no_prefetch() - 7.6).abs() < TOL);
    // Dantzig: item0 whole (4.0) + 2 units of item1 at density 0.3.
    assert!((upper_bound(&s) - 4.6).abs() < TOL);
    let lin = linear_relaxation(&s);
    assert_eq!(lin.critical, Some(1));
    assert!((lin.fractions[1] - 1.0 / 3.0).abs() < TOL);

    // Plan ⟨0, 2⟩: st = 7, g = (4.0 + 1.8) − (1 − 0.5)·7 = 2.3.
    assert!((stretch_time(&s, &[0, 2]) - 7.0).abs() < TOL);
    assert!((gain_empty_cache(&s, &[0, 2]) - 2.3).abs() < TOL);
    // E[T] = 7.6 − 2.3 = 5.3.
    assert!((expected_access_time_empty(&s, &[0, 2]) - 5.3).abs() < TOL);
}

#[test]
fn running_example_solvers() {
    let s = running_example();
    // KP: {0} at profit 4.0 (0+1 weighs 14 > 10).
    let kp = solve_kp(&s);
    assert_eq!(kp.plan.items(), &[0]);
    assert!((kp.profit - 4.0).abs() < TOL);
    // Greedy agrees here.
    assert_eq!(greedy_by_density(&s).plan.items(), &[0]);
    // Verbatim Figure-3: picks {0, 2} with internal 4.4 but true 2.3.
    let paper = solve_paper(&s);
    assert_eq!(paper.plan.items(), &[0, 2]);
    assert!((paper.internal_gain - 4.4).abs() < TOL);
    assert!((paper.gain - 2.3).abs() < TOL);
    // Corrected / global / oracle: {0} at 4.0.
    for sol in [
        solve_exact(&s),
        solve_global(&s).unwrap(),
        solve_optimal(&s),
    ] {
        assert_eq!(sol.plan.items(), &[0]);
        assert!((sol.gain - 4.0).abs() < TOL);
    }
}

/// The Theorem-1 feasibility-gap instance:
/// P = (0.5, 0.3, 0.2), r = (10, 2, 50), v = 5.
#[test]
fn feasibility_gap_instance() {
    let s = Scenario::new(vec![0.5, 0.3, 0.2], vec![10.0, 2.0, 50.0], 5.0).unwrap();
    // Canonical-space optimum: {1} at 0.6.
    let exact = solve_exact(&s);
    assert_eq!(exact.plan.items(), &[1]);
    assert!((exact.gain - 0.6).abs() < TOL);
    // Global optimum: ⟨1, 0⟩ at g = 5.6 − 0.7·7 = 0.7.
    for sol in [solve_optimal(&s), solve_global(&s).unwrap()] {
        assert_eq!(sol.plan.items(), &[1, 0]);
        assert!((sol.gain - 0.7).abs() < TOL);
    }
}

/// Eq. 9 with a concrete cache: C = {1}, F = ⟨0⟩, D = ∅ and D = {1}.
#[test]
fn cache_gain_golden_values() {
    let s = running_example();
    // g(⟨0⟩, ∅ | C = {1}): g*(⟨0⟩) = 4.0, no stretch, no ejection: 4.0.
    assert!((gain_with_cache(&s, &[0], &[1], &[]) - 4.0).abs() < TOL);
    // Ejecting item 1 costs its delay profit 1.8: g = 4.0 − 1.8 = 2.2.
    assert!((gain_with_cache(&s, &[0], &[1], &[1]) - 2.2).abs() < TOL);
    // Stretching plan ⟨0, 2⟩ with C = {1} kept: kept mass discounts the
    // penalty: g = g*(F) + P_1·st = 2.3 + 0.3·7 = 4.4.
    assert!((gain_with_cache(&s, &[0, 2], &[1], &[]) - 4.4).abs() < TOL);
}

/// A deterministic request (P = 1) with v = 5, r = 8: stretching is
/// always right and worth exactly v.
#[test]
fn deterministic_request_gains_v() {
    let s = Scenario::new(vec![1.0], vec![8.0], 5.0).unwrap();
    for sol in [
        solve_paper(&s),
        solve_exact(&s),
        solve_optimal(&s),
        solve_global(&s).unwrap(),
    ] {
        assert_eq!(sol.plan.items(), &[0]);
        assert!((sol.gain - 5.0).abs() < TOL);
    }
}

/// Everything fits: every solver takes everything, gain = E[T(np)].
#[test]
fn ample_capacity_takes_all() {
    let s = Scenario::new(vec![0.4, 0.35, 0.25], vec![3.0, 4.0, 5.0], 50.0).unwrap();
    let expect = s.expected_no_prefetch();
    for sol in [
        solve_paper(&s),
        solve_exact(&s),
        solve_optimal(&s),
        solve_global(&s).unwrap(),
    ] {
        assert_eq!(sol.plan.len(), 3);
        assert!((sol.gain - expect).abs() < TOL);
    }
    let kp = solve_kp(&s);
    assert!((kp.profit - expect).abs() < TOL);
}

/// Mass below one (cache case): the uncovered mass pays the stretch.
/// P = (0.4, 0.2) with 0.4 resting elsewhere; plan ⟨0⟩ with r = 8, v = 5:
/// st = 3, g = 3.2 − 1.0·3 = 0.2.
#[test]
fn reduced_mass_penalty() {
    let s = Scenario::new(vec![0.4, 0.2], vec![8.0, 4.0], 5.0).unwrap();
    assert!((gain_empty_cache(&s, &[0]) - 0.2).abs() < TOL);
}
