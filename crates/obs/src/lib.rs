//! Zero-overhead-when-off observability: the workspace's sixth
//! string-keyed seam.
//!
//! Every layer of the workspace (the `distsys` executors, the facade
//! engine, `skp-serve`) carries instrumentation points built from this
//! crate. The contract that makes that acceptable is **pay-for-play**:
//!
//! - An instrument handle ([`Counter`], [`Gauge`], [`TimeHistogram`])
//!   is an `Option<Arc<cell>>`. With the default `none` sink the
//!   option is `None` and every operation is a branch-on-null no-op —
//!   no allocation, no atomics, no clock reads ([`TimeHistogram::time`]
//!   skips `Instant::now` entirely when off).
//! - With the `memory` sink, hot-path updates are single relaxed
//!   atomic operations on cells created up front; the benchmarked
//!   budget is ≤2% on the `distsys` event-rate grid
//!   (`crates/bench/benches/obs.rs`, snapshot `BENCH_obs.json`).
//! - `sampled:<N>` keeps counters and gauges exact but records only
//!   every Nth histogram observation, for hot paths where even the
//!   timed section's clock reads would show up.
//!
//! Sinks are chosen by spec string through a registry that mirrors the
//! workspace's other five seams (policies, predictors, backends, plan
//! stores — see the facade crate docs): [`build_obs`],
//! [`register_obs_sink`], [`obs_sink_specs`], listed by
//! `skp-plan --list`.
//!
//! Observability never changes results: reports and event logs are
//! bit-identical whatever sink is installed, and the facade excludes
//! its [`PhaseBreakdown`] block from report equality and the wire
//! format just like the plan-store counters.
//!
//! The crate is std-only and sits below `distsys` in the dependency
//! order; it also hosts the shared diagnostic renderers: Prometheus
//! text exposition ([`prom`]) and Chrome/Perfetto trace JSON
//! ([`trace`]), plus the [`PhaseTimer`] used to decompose engine runs
//! into named spans.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

mod phase;
pub mod prom;
mod registry;
pub mod trace;

pub use phase::{EpochMark, FaultWindow, PhaseBreakdown, PhaseSpan, PhaseTimer};
pub use registry::{
    build_obs, obs_sink_names, obs_sink_specs, register_obs_sink, ObsBuilder, ObsSpec,
};

/// Upper bucket edges (seconds) of every [`TimeHistogram`]; a final
/// `+Inf` bucket is implicit. Fixed across the workspace so histograms
/// from different runs and processes can be merged bucket-by-bucket.
pub const TIME_BUCKETS: [f64; 12] = [
    1e-6, 1e-5, 1e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.5, 1.0, 5.0, 10.0,
];

/// Error from building or registering an observability sink.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObsError {
    /// Which spec family was malformed (e.g. `"sampled obs spec"`).
    pub what: &'static str,
    /// Human-readable diagnosis of the malformation.
    pub detail: String,
}

impl fmt::Display for ObsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid {}: {}", self.what, self.detail)
    }
}

impl std::error::Error for ObsError {}

/// The storage cell behind an attached [`Counter`].
#[derive(Debug, Default)]
pub struct CounterCell {
    value: AtomicU64,
}

impl CounterCell {
    /// Adds `n` (relaxed; counters are monotone, order is irrelevant).
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// The storage cell behind an attached [`Gauge`] (an `f64` stored as
/// its bit pattern in an `AtomicU64`).
#[derive(Debug, Default)]
pub struct GaugeCell {
    bits: AtomicU64,
}

impl GaugeCell {
    /// Overwrites the gauge value.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value (`0.0` if never set).
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// The storage cell behind an attached [`TimeHistogram`]: fixed
/// [`TIME_BUCKETS`] edges plus `+Inf`, a CAS-looped `f64` sum and an
/// observation count. `sample_every > 1` records only every Nth
/// observation (the `sampled:<N>` sink).
#[derive(Debug)]
pub struct HistCell {
    sample_every: u64,
    tick: AtomicU64,
    buckets: Vec<AtomicU64>,
    sum_bits: AtomicU64,
    count: AtomicU64,
}

impl HistCell {
    fn new(sample_every: u64) -> Self {
        Self {
            sample_every,
            tick: AtomicU64::new(0),
            buckets: (0..=TIME_BUCKETS.len())
                .map(|_| AtomicU64::new(0))
                .collect(),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            count: AtomicU64::new(0),
        }
    }

    /// Records one duration (subject to the cell's sampling rate).
    pub fn observe(&self, seconds: f64) {
        if self.sample_every > 1
            && !self
                .tick
                .fetch_add(1, Ordering::Relaxed)
                .is_multiple_of(self.sample_every)
        {
            return;
        }
        let idx = TIME_BUCKETS
            .iter()
            .position(|&le| seconds <= le)
            .unwrap_or(TIME_BUCKETS.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + seconds).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    fn snapshot(&self, key: &str) -> HistogramSnapshot {
        let mut cumulative = 0;
        let mut buckets = Vec::with_capacity(self.buckets.len());
        for (i, b) in self.buckets.iter().enumerate() {
            cumulative += b.load(Ordering::Relaxed);
            let le = TIME_BUCKETS.get(i).copied().unwrap_or(f64::INFINITY);
            buckets.push((le, cumulative));
        }
        HistogramSnapshot {
            key: key.to_string(),
            buckets,
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
        }
    }
}

/// A monotone counter handle; a no-op when detached.
#[derive(Debug, Clone, Default)]
pub struct Counter(Option<Arc<CounterCell>>);

impl Counter {
    /// A detached (no-op) counter.
    pub fn off() -> Self {
        Self(None)
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        if let Some(c) = &self.0 {
            c.add(1);
        }
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.add(n);
        }
    }

    /// Whether the handle is attached to a sink.
    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }
}

/// A last-value-wins gauge handle; a no-op when detached.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Option<Arc<GaugeCell>>);

impl Gauge {
    /// A detached (no-op) gauge.
    pub fn off() -> Self {
        Self(None)
    }

    /// Overwrites the gauge value.
    #[inline]
    pub fn set(&self, v: f64) {
        if let Some(g) = &self.0 {
            g.set(v);
        }
    }

    /// Whether the handle is attached to a sink.
    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }
}

/// A duration histogram handle over the fixed [`TIME_BUCKETS`] edges;
/// a no-op when detached.
#[derive(Debug, Clone, Default)]
pub struct TimeHistogram(Option<Arc<HistCell>>);

impl TimeHistogram {
    /// A detached (no-op) histogram.
    pub fn off() -> Self {
        Self(None)
    }

    /// Records one duration in seconds.
    #[inline]
    pub fn observe_seconds(&self, seconds: f64) {
        if let Some(h) = &self.0 {
            h.observe(seconds);
        }
    }

    /// Times `f` and records its duration. When detached this runs `f`
    /// directly — no clock reads.
    #[inline]
    pub fn time<T>(&self, f: impl FnOnce() -> T) -> T {
        match &self.0 {
            None => f(),
            Some(h) => {
                let t0 = std::time::Instant::now();
                let out = f();
                h.observe(t0.elapsed().as_secs_f64());
                out
            }
        }
    }

    /// Whether the handle is attached to a sink.
    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }
}

/// One histogram in a [`Snapshot`]: cumulative per-bucket counts
/// (final edge `+Inf`), the (possibly sampled) sum and count.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// The instrument key.
    pub key: String,
    /// `(upper_edge_seconds, cumulative_count)` per bucket; the last
    /// edge is `f64::INFINITY` and its count equals `count`.
    pub buckets: Vec<(f64, u64)>,
    /// Sum of recorded durations, seconds.
    pub sum: f64,
    /// Number of recorded observations.
    pub count: u64,
}

/// A point-in-time copy of every instrument a sink has vended, in
/// deterministic (sorted-by-key) order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// `(key, value)` per counter.
    pub counters: Vec<(String, u64)>,
    /// `(key, value)` per gauge.
    pub gauges: Vec<(String, f64)>,
    /// One entry per time histogram.
    pub histograms: Vec<HistogramSnapshot>,
}

/// A metrics sink: vends the storage cells behind instrument handles
/// and snapshots them. Implementations must be cheap to share
/// (`Arc<dyn ObsSink>`) and safe to drive from many threads.
pub trait ObsSink: Send + Sync {
    /// Registry name (the spec string up to the first `:`).
    fn name(&self) -> &'static str;

    /// Canonical spec string that rebuilds this sink via
    /// [`build_obs`] (a fixed point of the registry).
    fn spec_string(&self) -> String;

    /// The cell behind `key`, created on first use. Repeated calls
    /// with one key return the same cell.
    fn counter_cell(&self, key: &str) -> Arc<CounterCell>;

    /// The cell behind `key`, created on first use.
    fn gauge_cell(&self, key: &str) -> Arc<GaugeCell>;

    /// The cell behind `key`, created on first use.
    fn histogram_cell(&self, key: &str) -> Arc<HistCell>;

    /// Copies every vended instrument, sorted by key.
    fn snapshot(&self) -> Snapshot;
}

/// The cloneable observability handle threaded through the workspace:
/// either detached (the `none` sink — every instrument is a no-op) or
/// attached to an [`ObsSink`].
#[derive(Clone, Default)]
pub struct Obs {
    sink: Option<Arc<dyn ObsSink>>,
}

// `Arc<dyn ObsSink>` has no Debug; render the spec string instead.
impl fmt::Debug for Obs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Obs").field(&self.spec_string()).finish()
    }
}

impl Obs {
    /// The detached handle (the `none` sink): every instrument built
    /// from it is a branch-on-null no-op.
    pub fn off() -> Self {
        Self { sink: None }
    }

    /// Wraps an existing sink instance.
    pub fn from_sink(sink: Arc<dyn ObsSink>) -> Self {
        Self { sink: Some(sink) }
    }

    /// Whether a sink is attached.
    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Registry name of the attached sink, `"none"` when detached.
    pub fn name(&self) -> &'static str {
        self.sink.as_deref().map_or("none", ObsSink::name)
    }

    /// Canonical spec string (a fixed point of [`build_obs`]).
    pub fn spec_string(&self) -> String {
        self.sink
            .as_deref()
            .map_or_else(|| "none".to_string(), ObsSink::spec_string)
    }

    /// A counter handle for `key` (no-op when detached).
    pub fn counter(&self, key: &str) -> Counter {
        Counter(self.sink.as_deref().map(|s| s.counter_cell(key)))
    }

    /// A gauge handle for `key` (no-op when detached).
    pub fn gauge(&self, key: &str) -> Gauge {
        Gauge(self.sink.as_deref().map(|s| s.gauge_cell(key)))
    }

    /// A time-histogram handle for `key` (no-op when detached).
    pub fn time_histogram(&self, key: &str) -> TimeHistogram {
        TimeHistogram(self.sink.as_deref().map(|s| s.histogram_cell(key)))
    }

    /// Snapshot of the attached sink; empty when detached.
    pub fn snapshot(&self) -> Snapshot {
        self.sink
            .as_deref()
            .map(ObsSink::snapshot)
            .unwrap_or_default()
    }
}

/// The in-process sink behind the `memory` and `sampled:<N>` specs:
/// instruments live in key-sorted maps, updates are relaxed atomics on
/// the vended cells, snapshots are deterministic.
pub struct MemorySink {
    sample_every: u64,
    counters: Mutex<BTreeMap<String, Arc<CounterCell>>>,
    gauges: Mutex<BTreeMap<String, Arc<GaugeCell>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistCell>>>,
}

impl MemorySink {
    /// An exact sink (`memory`): every histogram observation recorded.
    pub fn new() -> Self {
        Self::with_sampling(1)
    }

    /// A sampling sink (`sampled:<N>`): histograms record every Nth
    /// observation; counters and gauges stay exact. `every` is clamped
    /// to at least 1.
    pub fn with_sampling(every: u64) -> Self {
        Self {
            sample_every: every.max(1),
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
        }
    }
}

impl Default for MemorySink {
    fn default() -> Self {
        Self::new()
    }
}

impl ObsSink for MemorySink {
    fn name(&self) -> &'static str {
        if self.sample_every > 1 {
            "sampled"
        } else {
            "memory"
        }
    }

    fn spec_string(&self) -> String {
        if self.sample_every > 1 {
            format!("sampled:{}", self.sample_every)
        } else {
            "memory".to_string()
        }
    }

    fn counter_cell(&self, key: &str) -> Arc<CounterCell> {
        let mut map = self.counters.lock().expect("obs counters poisoned");
        Arc::clone(map.entry(key.to_string()).or_default())
    }

    fn gauge_cell(&self, key: &str) -> Arc<GaugeCell> {
        let mut map = self.gauges.lock().expect("obs gauges poisoned");
        Arc::clone(map.entry(key.to_string()).or_default())
    }

    fn histogram_cell(&self, key: &str) -> Arc<HistCell> {
        let mut map = self.histograms.lock().expect("obs histograms poisoned");
        Arc::clone(
            map.entry(key.to_string())
                .or_insert_with(|| Arc::new(HistCell::new(self.sample_every))),
        )
    }

    fn snapshot(&self) -> Snapshot {
        let counters = self
            .counters
            .lock()
            .expect("obs counters poisoned")
            .iter()
            .map(|(k, c)| (k.clone(), c.get()))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .expect("obs gauges poisoned")
            .iter()
            .map(|(k, g)| (k.clone(), g.get()))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("obs histograms poisoned")
            .iter()
            .map(|(k, h)| h.snapshot(k))
            .collect();
        Snapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detached_handles_are_noops_and_report_off() {
        let obs = Obs::off();
        assert!(!obs.enabled());
        assert_eq!(obs.name(), "none");
        assert_eq!(obs.spec_string(), "none");
        let c = obs.counter("x");
        let g = obs.gauge("x");
        let h = obs.time_histogram("x");
        assert!(!c.enabled() && !g.enabled() && !h.enabled());
        c.inc();
        c.add(5);
        g.set(3.0);
        h.observe_seconds(0.25);
        assert_eq!(h.time(|| 7), 7);
        assert_eq!(obs.snapshot(), Snapshot::default());
    }

    #[test]
    fn memory_sink_accumulates_and_snapshots_sorted() {
        let obs = Obs::from_sink(Arc::new(MemorySink::new()));
        assert!(obs.enabled());
        assert_eq!(obs.spec_string(), "memory");
        obs.counter("b_events").add(3);
        obs.counter("a_events").inc();
        // Handles for the same key share one cell.
        obs.counter("b_events").add(2);
        obs.gauge("depth").set(4.5);
        obs.gauge("depth").set(2.5);
        let snap = obs.snapshot();
        assert_eq!(
            snap.counters,
            vec![("a_events".to_string(), 1), ("b_events".to_string(), 5)]
        );
        assert_eq!(snap.gauges, vec![("depth".to_string(), 2.5)]);
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_end_at_inf() {
        let obs = Obs::from_sink(Arc::new(MemorySink::new()));
        let h = obs.time_histogram("lat");
        h.observe_seconds(5e-7); // bucket 0 (<= 1e-6)
        h.observe_seconds(2e-3); // <= 5e-3
        h.observe_seconds(99.0); // +Inf
        let snap = obs.snapshot();
        let hist = &snap.histograms[0];
        assert_eq!(hist.key, "lat");
        assert_eq!(hist.count, 3);
        assert!((hist.sum - (5e-7 + 2e-3 + 99.0)).abs() < 1e-12);
        assert_eq!(hist.buckets.len(), TIME_BUCKETS.len() + 1);
        let (last_le, last_n) = *hist.buckets.last().unwrap();
        assert!(last_le.is_infinite() && last_n == 3);
        // Cumulative: monotone non-decreasing.
        assert!(hist.buckets.windows(2).all(|w| w[0].1 <= w[1].1));
        assert_eq!(hist.buckets[0].1, 1);
    }

    #[test]
    fn sampled_sink_records_every_nth_observation() {
        let obs = Obs::from_sink(Arc::new(MemorySink::with_sampling(4)));
        assert_eq!(obs.spec_string(), "sampled:4");
        assert_eq!(obs.name(), "sampled");
        let h = obs.time_histogram("lat");
        for _ in 0..16 {
            h.observe_seconds(1e-3);
        }
        let snap = obs.snapshot();
        assert_eq!(snap.histograms[0].count, 4);
        // Counters stay exact under sampling.
        let c = obs.counter("n");
        for _ in 0..16 {
            c.inc();
        }
        assert_eq!(obs.snapshot().counters[0].1, 16);
    }

    #[test]
    fn timed_sections_record_into_the_histogram() {
        let obs = Obs::from_sink(Arc::new(MemorySink::new()));
        let h = obs.time_histogram("work");
        let out = h.time(|| 41 + 1);
        assert_eq!(out, 42);
        let snap = obs.snapshot();
        assert_eq!(snap.histograms[0].count, 1);
        assert!(snap.histograms[0].sum >= 0.0);
    }
}
