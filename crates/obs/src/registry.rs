//! The string-keyed obs-sink registry: spec strings to [`Obs`]
//! handles, mirroring the plan-store registry — builtin sinks plus
//! runtime registration, with hardened per-shape parse errors.

use std::sync::{Arc, LazyLock, RwLock};

use crate::{MemorySink, Obs, ObsError};

/// Default sampling rate of a bare `sampled` spec.
const SAMPLED_DEFAULT_EVERY: u64 = 64;

/// Describes one registered obs-sink kind for listings (`skp-plan
/// --list`, `GET /registry`).
#[derive(Debug, Clone, Copy)]
pub struct ObsSpec {
    /// Registry name (the spec string up to the first `:`).
    pub name: &'static str,
    /// Human-readable parameter syntax (empty when the sink takes
    /// none).
    pub params: &'static str,
    /// One-line description for listings.
    pub summary: &'static str,
}

/// Builds an [`Obs`] handle from the spec's parameter part (the text
/// after the first `:`, absent for a bare name).
pub type ObsBuilder = fn(Option<&str>) -> Result<Obs, ObsError>;

struct SinkEntry {
    spec: ObsSpec,
    build: ObsBuilder,
}

fn param_err(what: &'static str, detail: String) -> ObsError {
    ObsError {
        what,
        detail: format!("{detail} (see `skp-plan --list` for the syntax)"),
    }
}

/// Parses a strictly positive integer field, with the same error
/// shapes as the other registries' spec hardening.
fn parse_positive(what: &'static str, field: &'static str, raw: &str) -> Result<u64, ObsError> {
    match raw.parse::<u64>() {
        Ok(0) => Err(param_err(
            what,
            format!("{field} must be at least 1, got '0'"),
        )),
        Ok(n) => Ok(n),
        Err(_) => Err(param_err(
            what,
            format!("{field} '{raw}' is not a positive integer"),
        )),
    }
}

/// Rejects leftover `:`-separated parts after the expected ones.
fn reject_trailing<'a>(
    what: &'static str,
    after: &'static str,
    mut parts: impl Iterator<Item = &'a str>,
) -> Result<(), ObsError> {
    match parts.next() {
        None => Ok(()),
        Some(junk) => Err(param_err(
            what,
            format!("trailing ':{junk}' after the {after}"),
        )),
    }
}

fn build_none(param: Option<&str>) -> Result<Obs, ObsError> {
    match param {
        None => Ok(Obs::off()),
        Some(raw) => Err(param_err(
            "none obs spec",
            format!("takes no parameters, got ':{raw}'"),
        )),
    }
}

fn build_memory(param: Option<&str>) -> Result<Obs, ObsError> {
    match param {
        None => Ok(Obs::from_sink(Arc::new(MemorySink::new()))),
        Some(raw) => Err(param_err(
            "memory obs spec",
            format!("takes no parameters, got ':{raw}'"),
        )),
    }
}

fn build_sampled(param: Option<&str>) -> Result<Obs, ObsError> {
    const WHAT: &str = "sampled obs spec";
    let every = match param {
        None => SAMPLED_DEFAULT_EVERY,
        Some(raw) => {
            let mut parts = raw.split(':');
            let every = parse_positive(WHAT, "rate", parts.next().unwrap_or_default())?;
            reject_trailing(WHAT, "sampling rate", parts)?;
            every
        }
    };
    Ok(Obs::from_sink(Arc::new(MemorySink::with_sampling(every))))
}

fn builtin_entries() -> Vec<SinkEntry> {
    vec![
        SinkEntry {
            spec: ObsSpec {
                name: "none",
                params: "",
                summary: "no-op sink: every instrument is a branch-on-null no-op (the default)",
            },
            build: build_none,
        },
        SinkEntry {
            spec: ObsSpec {
                name: "memory",
                params: "",
                summary: "in-process sink: relaxed-atomic counters/gauges + fixed-bucket time histograms",
            },
            build: build_memory,
        },
        SinkEntry {
            spec: ObsSpec {
                name: "sampled",
                params: ":N",
                summary: "memory sink recording 1-in-N histogram observations (default 64); counters stay exact",
            },
            build: build_sampled,
        },
    ]
}

static REGISTRY: LazyLock<RwLock<Vec<SinkEntry>>> =
    LazyLock::new(|| RwLock::new(builtin_entries()));

/// Registers an obs-sink kind under a new name, making it reachable
/// from every spec-string surface (`SessionBuilder::obs`, the `obs`
/// workload directive, `skp-plan run --obs`). Errors if the name is
/// taken.
pub fn register_obs_sink(
    name: &'static str,
    params: &'static str,
    summary: &'static str,
    build: ObsBuilder,
) -> Result<(), ObsError> {
    let mut reg = REGISTRY.write().expect("obs registry poisoned");
    if reg.iter().any(|e| e.spec.name == name) {
        return Err(ObsError {
            what: "obs sink registration",
            detail: format!("the name '{name}' is already registered"),
        });
    }
    reg.push(SinkEntry {
        spec: ObsSpec {
            name,
            params,
            summary,
        },
        build,
    });
    Ok(())
}

/// The registered obs-sink kinds, in registration order.
pub fn obs_sink_specs() -> Vec<ObsSpec> {
    REGISTRY
        .read()
        .expect("obs registry poisoned")
        .iter()
        .map(|e| e.spec)
        .collect()
}

/// The registered obs-sink names, in registration order.
pub fn obs_sink_names() -> Vec<&'static str> {
    REGISTRY
        .read()
        .expect("obs registry poisoned")
        .iter()
        .map(|e| e.spec.name)
        .collect()
}

/// Builds an [`Obs`] handle from a spec string (`name` or
/// `name:params`) through the registry.
pub fn build_obs(spec: &str) -> Result<Obs, ObsError> {
    let (name, param) = match spec.split_once(':') {
        Some((name, param)) => (name, Some(param)),
        None => (spec, None),
    };
    let build = {
        let reg = REGISTRY.read().expect("obs registry poisoned");
        reg.iter().find(|e| e.spec.name == name).map(|e| e.build)
    };
    match build {
        Some(build) => build(param),
        None => Err(ObsError {
            what: "obs spec",
            detail: format!(
                "unknown obs sink '{name}' (known: {})",
                obs_sink_names().join(", ")
            ),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn err(spec: &str) -> String {
        build_obs(spec).expect_err("must fail").to_string()
    }

    #[test]
    fn builtin_specs_build_and_round_trip() {
        for (spec, canonical) in [
            ("none", "none"),
            ("memory", "memory"),
            ("sampled", "sampled:64"),
            ("sampled:8", "sampled:8"),
            // sampling every observation is the exact memory sink
            ("sampled:1", "memory"),
        ] {
            let obs = build_obs(spec).expect(spec);
            assert_eq!(obs.spec_string(), canonical, "spec {spec}");
            // The canonical string is a fixed point of the registry.
            let again = build_obs(&obs.spec_string()).expect(canonical);
            assert_eq!(again.spec_string(), canonical);
        }
    }

    #[test]
    fn none_is_detached_and_memory_is_attached() {
        assert!(!build_obs("none").unwrap().enabled());
        assert!(build_obs("memory").unwrap().enabled());
        assert!(build_obs("sampled:64").unwrap().enabled());
    }

    #[test]
    fn unknown_sink_lists_the_known_names() {
        let msg = err("statsd:9");
        assert!(msg.contains("unknown obs sink 'statsd'"), "{msg}");
        for name in ["none", "memory", "sampled"] {
            assert!(msg.contains(name), "{msg} missing {name}");
        }
    }

    #[test]
    fn zero_and_non_numeric_rates_are_rejected() {
        let msg = err("sampled:0");
        assert!(msg.contains("rate must be at least 1, got '0'"), "{msg}");
        let msg = err("sampled:often");
        assert!(msg.contains("'often' is not a positive integer"), "{msg}");
        let msg = err("sampled:");
        assert!(msg.contains("'' is not a positive integer"), "{msg}");
    }

    #[test]
    fn trailing_junk_is_rejected() {
        let msg = err("sampled:8:junk");
        assert!(
            msg.contains("trailing ':junk' after the sampling rate"),
            "{msg}"
        );
        let msg = err("none:x");
        assert!(msg.contains("takes no parameters, got ':x'"), "{msg}");
        let msg = err("memory:4");
        assert!(msg.contains("takes no parameters, got ':4'"), "{msg}");
    }

    #[test]
    fn every_error_points_at_the_listing() {
        for spec in ["sampled:0", "sampled:x:y", "none:x", "memory:8"] {
            assert!(
                err(spec).contains("see `skp-plan --list`"),
                "{spec} error lacks the listing pointer"
            );
        }
    }

    #[test]
    fn duplicate_registration_is_rejected() {
        let e = register_obs_sink("memory", "", "dup", build_memory).expect_err("must fail");
        assert!(e.to_string().contains("already registered"));
        fn build_probe(_: Option<&str>) -> Result<Obs, ObsError> {
            Ok(Obs::off())
        }
        register_obs_sink("probe-sink", "", "test-only", build_probe).expect("fresh name");
        assert!(obs_sink_names().contains(&"probe-sink"));
        assert_eq!(build_obs("probe-sink").unwrap().name(), "none");
    }
}
