//! Phase timers: decompose a run into named wall-clock spans, plus the
//! per-epoch scheduler marks the executors emit when observed. Both
//! ride on [`PhaseBreakdown`], the diagnostic block the facade
//! attaches to its reports (excluded from equality and the wire, like
//! the plan-store counters).

use std::time::Instant;

/// One named wall-clock span of a run (e.g. `plan-solve`, `simulate`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseSpan {
    /// Phase name.
    pub name: &'static str,
    /// Wall-clock duration, seconds.
    pub seconds: f64,
}

/// A per-epoch scheduler mark: what the event loop looked like at one
/// simulated-time boundary.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EpochMark {
    /// Epoch index (0-based).
    pub epoch: u64,
    /// Simulated time of the boundary.
    pub at: f64,
    /// Events popped since the previous mark.
    pub events: u64,
    /// Events pending in the queue at the boundary.
    pub pending: usize,
    /// Shards with un-flushed statistics at the boundary.
    pub dirty_shards: u32,
}

/// One shard-outage window in *simulated* time — a fault-injection
/// phase mark the facade attaches when a `faults:` generated workload
/// ran observed, so trace exports can draw the blackout alongside the
/// wall-clock spans.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultWindow {
    /// Shard the outage applied to.
    pub shard: usize,
    /// Simulated start of the window.
    pub start: f64,
    /// Simulated end of the window.
    pub end: f64,
}

/// The diagnostic timing block of a run: named spans plus scheduler
/// marks. Empty (`Default`) when observability is off.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PhaseBreakdown {
    /// Wall-clock spans in execution order.
    pub spans: Vec<PhaseSpan>,
    /// Per-epoch scheduler marks in simulated-time order (only
    /// populated by the sharded executors).
    pub marks: Vec<EpochMark>,
    /// Shard-outage windows in simulated time (only populated by
    /// observed runs of fault-injecting generated workloads).
    pub faults: Vec<FaultWindow>,
}

impl PhaseBreakdown {
    /// Sum of all span durations, seconds.
    pub fn total_seconds(&self) -> f64 {
        self.spans.iter().map(|s| s.seconds).sum()
    }

    /// Whether nothing was recorded (observability was off).
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty() && self.marks.is_empty() && self.faults.is_empty()
    }
}

/// Accumulates [`PhaseSpan`]s: `start` closes the previous span and
/// opens the next, `finish` closes the last and yields the breakdown.
/// Disabled timers never read the clock.
#[derive(Debug)]
pub struct PhaseTimer {
    enabled: bool,
    current: Option<(&'static str, Instant)>,
    spans: Vec<PhaseSpan>,
}

impl PhaseTimer {
    /// A timer that records iff `enabled`.
    pub fn new(enabled: bool) -> Self {
        Self {
            enabled,
            current: None,
            spans: Vec::new(),
        }
    }

    /// Whether the timer records anything.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Closes the current span (if any) and opens `name`.
    pub fn start(&mut self, name: &'static str) {
        if !self.enabled {
            return;
        }
        self.stop();
        self.current = Some((name, Instant::now()));
    }

    /// Closes the current span without opening a new one.
    pub fn stop(&mut self) {
        if let Some((name, t0)) = self.current.take() {
            self.spans.push(PhaseSpan {
                name,
                seconds: t0.elapsed().as_secs_f64(),
            });
        }
    }

    /// Closes the current span and yields the breakdown with `marks`
    /// attached. An empty breakdown when the timer was disabled.
    pub fn finish(mut self, marks: Vec<EpochMark>) -> PhaseBreakdown {
        self.stop();
        PhaseBreakdown {
            spans: self.spans,
            marks,
            faults: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_timer_records_nothing() {
        let mut t = PhaseTimer::new(false);
        assert!(!t.enabled());
        t.start("build");
        t.start("simulate");
        let b = t.finish(Vec::new());
        assert!(b.is_empty());
        assert_eq!(b, PhaseBreakdown::default());
        assert_eq!(b.total_seconds(), 0.0);
    }

    #[test]
    fn enabled_timer_records_spans_in_order() {
        let mut t = PhaseTimer::new(true);
        t.start("build");
        t.start("simulate");
        t.start("fold");
        let b = t.finish(vec![EpochMark {
            epoch: 0,
            at: 1.0,
            events: 10,
            pending: 2,
            dirty_shards: 1,
        }]);
        let names: Vec<_> = b.spans.iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["build", "simulate", "fold"]);
        assert!(b.spans.iter().all(|s| s.seconds >= 0.0));
        assert!(b.total_seconds() >= 0.0);
        assert_eq!(b.marks.len(), 1);
        assert!(!b.is_empty());
    }

    #[test]
    fn stop_without_start_is_harmless() {
        let mut t = PhaseTimer::new(true);
        t.stop();
        t.start("only");
        let b = t.finish(Vec::new());
        assert_eq!(b.spans.len(), 1);
    }
}
