//! Prometheus text exposition (version 0.0.4): rendering metric
//! families to the scrape format and a strict parser used both by the
//! round-trip tests and by the `promcheck` binary CI runs against
//! `skp-serve`'s `GET /metrics`.
//!
//! The parser is deliberately stricter than a Prometheus server:
//! every sample must follow a `# TYPE` line, histogram series must
//! form complete `_bucket`/`_sum`/`_count` triples with a `+Inf`
//! bucket, cumulative bucket counts must be monotone and agree with
//! `_count`. Anything this module renders parses back to equal
//! families.

use std::fmt::Write as _;

/// The exposition type of a metric family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone counter (`_total` suffix by convention).
    Counter,
    /// Last-value-wins gauge.
    Gauge,
    /// Cumulative histogram (`_bucket`/`_sum`/`_count` series).
    Histogram,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        match s {
            "counter" => Some(MetricKind::Counter),
            "gauge" => Some(MetricKind::Gauge),
            "histogram" => Some(MetricKind::Histogram),
            _ => None,
        }
    }
}

/// One sample of a family: a label set and its value.
#[derive(Debug, Clone, PartialEq)]
pub struct Point {
    /// Label pairs, rendered in order (without the histogram `le`
    /// label, which is synthesised per bucket).
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: PointValue,
}

/// The value of a [`Point`].
#[derive(Debug, Clone, PartialEq)]
pub enum PointValue {
    /// A plain counter/gauge value.
    Value(f64),
    /// A cumulative histogram.
    Histogram {
        /// `(upper_edge, cumulative_count)`; the final edge must be
        /// `+Inf` and its count must equal `count`.
        buckets: Vec<(f64, u64)>,
        /// Sum of observations.
        sum: f64,
        /// Total observation count.
        count: u64,
    },
}

/// A metric family: one `# HELP`/`# TYPE` header and its samples.
#[derive(Debug, Clone, PartialEq)]
pub struct Family {
    /// Metric name (`[a-zA-Z_:][a-zA-Z0-9_:]*`).
    pub name: String,
    /// Help text (empty to omit the `# HELP` line).
    pub help: String,
    /// Exposition type.
    pub kind: MetricKind,
    /// Samples, rendered in order.
    pub points: Vec<Point>,
}

fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

fn escape_label(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Renders an `f64` the way the exposition format expects: shortest
/// round-trip decimal, `+Inf`/`-Inf`/`NaN` for non-finite values.
fn num(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else {
        format!("{v}")
    }
}

fn render_labels(out: &mut String, labels: &[(String, String)], extra: Option<(&str, &str)>) {
    if labels.is_empty() && extra.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{k}=\"{}\"", escape_label(v));
    }
    if let Some((k, v)) = extra {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{v}\"");
    }
    out.push('}');
}

/// Renders families to the text exposition format. The output always
/// parses back ([`parse`]) to equal families.
pub fn render(families: &[Family]) -> String {
    let mut out = String::new();
    for f in families {
        if !f.help.is_empty() {
            let _ = writeln!(out, "# HELP {} {}", f.name, escape_help(&f.help));
        }
        let _ = writeln!(out, "# TYPE {} {}", f.name, f.kind.as_str());
        for p in &f.points {
            match &p.value {
                PointValue::Value(v) => {
                    out.push_str(&f.name);
                    render_labels(&mut out, &p.labels, None);
                    let _ = writeln!(out, " {}", num(*v));
                }
                PointValue::Histogram {
                    buckets,
                    sum,
                    count,
                } => {
                    for (le, n) in buckets {
                        let _ = write!(out, "{}_bucket", f.name);
                        render_labels(&mut out, &p.labels, Some(("le", &num(*le))));
                        let _ = writeln!(out, " {n}");
                    }
                    let _ = write!(out, "{}_sum", f.name);
                    render_labels(&mut out, &p.labels, None);
                    let _ = writeln!(out, " {}", num(*sum));
                    let _ = write!(out, "{}_count", f.name);
                    render_labels(&mut out, &p.labels, None);
                    let _ = writeln!(out, " {count}");
                }
            }
        }
    }
    out
}

fn valid_metric_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn parse_value(raw: &str) -> Result<f64, String> {
    match raw {
        "+Inf" | "Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        "NaN" => Ok(f64::NAN),
        _ => raw
            .parse::<f64>()
            .map_err(|_| format!("'{raw}' is not a number")),
    }
}

fn unescape_help(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    let mut chars = raw.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some(other) => {
                out.push('\\');
                out.push(other);
            }
            None => out.push('\\'),
        }
    }
    out
}

fn unescape_label(raw: &str) -> Result<String, String> {
    let mut out = String::with_capacity(raw.len());
    let mut chars = raw.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('"') => out.push('"'),
            Some('n') => out.push('\n'),
            other => return Err(format!("bad escape '\\{}'", other.unwrap_or(' '))),
        }
    }
    Ok(out)
}

/// Scans a `{name="value",...}` body (without the braces).
fn parse_labels(body: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut rest = body;
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("label without '=' in '{rest}'"))?;
        let name = &rest[..eq];
        if !valid_label_name(name) {
            return Err(format!("invalid label name '{name}'"));
        }
        rest = &rest[eq + 1..];
        if !rest.starts_with('"') {
            return Err(format!("label '{name}' value is not quoted"));
        }
        rest = &rest[1..];
        // Find the closing quote, skipping escapes.
        let mut end = None;
        let mut escaped = false;
        for (i, c) in rest.char_indices() {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                end = Some(i);
                break;
            }
        }
        let end = end.ok_or_else(|| format!("unterminated value for label '{name}'"))?;
        labels.push((name.to_string(), unescape_label(&rest[..end])?));
        rest = &rest[end + 1..];
        if let Some(stripped) = rest.strip_prefix(',') {
            if stripped.is_empty() {
                return Err("trailing ',' in label set".to_string());
            }
            rest = stripped;
        } else if !rest.is_empty() {
            return Err(format!("junk '{rest}' after label value"));
        }
    }
    Ok(labels)
}

/// A histogram point being assembled from its series.
struct PartialHist {
    labels: Vec<(String, String)>,
    buckets: Vec<(f64, u64)>,
    sum: Option<f64>,
    count: Option<u64>,
}

struct ParseFamily {
    family: Family,
    partials: Vec<PartialHist>,
}

enum HistPart {
    Bucket,
    Sum,
    Count,
}

/// Parses text exposition back into families. Strict: see the module
/// docs for what is rejected beyond plain syntax errors.
pub fn parse(text: &str) -> Result<Vec<Family>, String> {
    let mut families: Vec<ParseFamily> = Vec::new();
    let mut helps: Vec<(String, String)> = Vec::new();

    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        let at = |msg: String| format!("line {n}: {msg}");
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (name, help) = match rest.split_once(' ') {
                Some((name, help)) => (name, help),
                None => (rest, ""),
            };
            if !valid_metric_name(name) {
                return Err(at(format!("invalid metric name '{name}' in HELP")));
            }
            if helps.iter().any(|(h, _)| h == name) {
                return Err(at(format!("duplicate # HELP for '{name}'")));
            }
            helps.push((name.to_string(), unescape_help(help)));
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, kind) = rest
                .split_once(' ')
                .ok_or_else(|| at(format!("malformed TYPE line '{line}'")))?;
            if !valid_metric_name(name) {
                return Err(at(format!("invalid metric name '{name}' in TYPE")));
            }
            let kind = MetricKind::parse(kind)
                .ok_or_else(|| at(format!("unknown metric type '{kind}'")))?;
            if families.iter().any(|f| f.family.name == name) {
                return Err(at(format!("duplicate # TYPE for '{name}'")));
            }
            let help = helps
                .iter()
                .find(|(h, _)| h == name)
                .map(|(_, v)| v.clone())
                .unwrap_or_default();
            families.push(ParseFamily {
                family: Family {
                    name: name.to_string(),
                    help,
                    kind,
                    points: Vec::new(),
                },
                partials: Vec::new(),
            });
            continue;
        }
        if line.starts_with('#') {
            continue; // free-form comment
        }

        // A sample line: name[{labels}] value
        let (series, value_raw) = {
            let name_end = line
                .find(['{', ' '])
                .ok_or_else(|| at(format!("malformed sample line '{line}'")))?;
            if line.as_bytes()[name_end] == b'{' {
                // The closing '}' is the first one outside a quoted
                // (escape-aware) label value.
                let mut close = None;
                let mut in_quote = false;
                let mut escaped = false;
                for (i, c) in line[name_end..].char_indices() {
                    if escaped {
                        escaped = false;
                    } else if in_quote {
                        match c {
                            '\\' => escaped = true,
                            '"' => in_quote = false,
                            _ => {}
                        }
                    } else if c == '"' {
                        in_quote = true;
                    } else if c == '}' {
                        close = Some(i + name_end);
                        break;
                    }
                }
                let close = close.ok_or_else(|| at("unterminated label set".to_string()))?;
                let value = line[close + 1..].trim_start();
                ((&line[..name_end], &line[name_end + 1..close]), value)
            } else {
                ((&line[..name_end], ""), line[name_end + 1..].trim_start())
            }
        };
        let (series_name, label_body) = series;
        if !valid_metric_name(series_name) {
            return Err(at(format!("invalid metric name '{series_name}'")));
        }
        if value_raw.is_empty() {
            return Err(at(format!("sample '{series_name}' has no value")));
        }
        let mut labels = parse_labels(label_body).map_err(&at)?;

        // Histogram series route to their base family.
        let hist = [
            ("_bucket", HistPart::Bucket),
            ("_sum", HistPart::Sum),
            ("_count", HistPart::Count),
        ]
        .into_iter()
        .find_map(|(suffix, part)| {
            let base = series_name.strip_suffix(suffix)?;
            let owns = families
                .iter()
                .position(|f| f.family.name == base && f.family.kind == MetricKind::Histogram)?;
            Some((owns, part))
        });

        if let Some((idx, part)) = hist {
            let fam = &mut families[idx];
            let le = match part {
                HistPart::Bucket => {
                    let pos = labels
                        .iter()
                        .position(|(k, _)| k == "le")
                        .ok_or_else(|| at(format!("'{series_name}' bucket without an le label")))?;
                    Some(parse_value(&labels.remove(pos).1).map_err(&at)?)
                }
                _ => None,
            };
            let slot = match fam.partials.iter_mut().find(|p| p.labels == labels) {
                Some(p) => p,
                None => {
                    fam.partials.push(PartialHist {
                        labels: labels.clone(),
                        buckets: Vec::new(),
                        sum: None,
                        count: None,
                    });
                    fam.partials.last_mut().expect("just pushed")
                }
            };
            match part {
                HistPart::Bucket => {
                    let count = value_raw.parse::<u64>().map_err(|_| {
                        at(format!(
                            "bucket count '{value_raw}' is not a non-negative integer"
                        ))
                    })?;
                    slot.buckets.push((le.expect("bucket has le"), count));
                }
                HistPart::Sum => {
                    if slot
                        .sum
                        .replace(parse_value(value_raw).map_err(&at)?)
                        .is_some()
                    {
                        return Err(at(format!("duplicate {series_name} for one label set")));
                    }
                }
                HistPart::Count => {
                    let count = value_raw.parse::<u64>().map_err(|_| {
                        at(format!("count '{value_raw}' is not a non-negative integer"))
                    })?;
                    if slot.count.replace(count).is_some() {
                        return Err(at(format!("duplicate {series_name} for one label set")));
                    }
                }
            }
            continue;
        }

        let fam = families
            .iter_mut()
            .find(|f| f.family.name == series_name)
            .ok_or_else(|| {
                at(format!(
                    "sample for metric '{series_name}' without a # TYPE line"
                ))
            })?;
        if fam.family.kind == MetricKind::Histogram {
            return Err(at(format!(
                "histogram '{series_name}' samples must use _bucket/_sum/_count"
            )));
        }
        if fam.family.points.iter().any(|p| p.labels == labels) {
            return Err(at(format!("duplicate sample for '{series_name}'")));
        }
        fam.family.points.push(Point {
            labels,
            value: PointValue::Value(parse_value(value_raw).map_err(&at)?),
        });
    }

    // Finalise histogram points and validate their invariants.
    let mut out = Vec::with_capacity(families.len());
    for pf in families {
        let mut family = pf.family;
        for p in pf.partials {
            let label_desc = || {
                if p.labels.is_empty() {
                    "{}".to_string()
                } else {
                    format!("{:?}", p.labels)
                }
            };
            let sum = p.sum.ok_or_else(|| {
                format!(
                    "histogram '{}' {} is missing _sum",
                    family.name,
                    label_desc()
                )
            })?;
            let count = p.count.ok_or_else(|| {
                format!(
                    "histogram '{}' {} is missing _count",
                    family.name,
                    label_desc()
                )
            })?;
            if p.buckets.is_empty() {
                return Err(format!(
                    "histogram '{}' {} has no buckets",
                    family.name,
                    label_desc()
                ));
            }
            for w in p.buckets.windows(2) {
                if w[1].0 <= w[0].0 {
                    return Err(format!(
                        "histogram '{}' bucket edges are not increasing",
                        family.name
                    ));
                }
                if w[1].1 < w[0].1 {
                    return Err(format!(
                        "histogram '{}' bucket counts are not cumulative",
                        family.name
                    ));
                }
            }
            let (last_le, last_n) = *p.buckets.last().expect("non-empty");
            if !(last_le.is_infinite() && last_le > 0.0) {
                return Err(format!(
                    "histogram '{}' is missing the le=\"+Inf\" bucket",
                    family.name
                ));
            }
            if last_n != count {
                return Err(format!(
                    "histogram '{}': +Inf bucket {} disagrees with _count {}",
                    family.name, last_n, count
                ));
            }
            family.points.push(Point {
                labels: p.labels,
                value: PointValue::Histogram {
                    buckets: p.buckets,
                    sum,
                    count,
                },
            });
        }
        out.push(family);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counter(name: &str, points: Vec<Point>) -> Family {
        Family {
            name: name.to_string(),
            help: format!("{name} help"),
            kind: MetricKind::Counter,
            points,
        }
    }

    fn plain(labels: &[(&str, &str)], v: f64) -> Point {
        Point {
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            value: PointValue::Value(v),
        }
    }

    #[test]
    fn renders_the_exact_expected_text() {
        let fams = vec![
            counter(
                "skp_requests_total",
                vec![
                    plain(&[("route", "/run")], 3.0),
                    plain(&[("route", "/stats")], 1.0),
                ],
            ),
            Family {
                name: "skp_run_latency_seconds".to_string(),
                help: "run latency".to_string(),
                kind: MetricKind::Histogram,
                points: vec![Point {
                    labels: vec![],
                    value: PointValue::Histogram {
                        buckets: vec![(0.001, 1), (1.0, 2), (f64::INFINITY, 3)],
                        sum: 1.25,
                        count: 3,
                    },
                }],
            },
        ];
        let text = render(&fams);
        let expected = "\
# HELP skp_requests_total skp_requests_total help
# TYPE skp_requests_total counter
skp_requests_total{route=\"/run\"} 3
skp_requests_total{route=\"/stats\"} 1
# HELP skp_run_latency_seconds run latency
# TYPE skp_run_latency_seconds histogram
skp_run_latency_seconds_bucket{le=\"0.001\"} 1
skp_run_latency_seconds_bucket{le=\"1\"} 2
skp_run_latency_seconds_bucket{le=\"+Inf\"} 3
skp_run_latency_seconds_sum 1.25
skp_run_latency_seconds_count 3
";
        assert_eq!(text, expected);
    }

    #[test]
    fn label_values_are_escaped_and_round_trip() {
        let fams = vec![counter(
            "weird",
            vec![plain(&[("path", "a\"b\\c\nd")], 1.0)],
        )];
        let text = render(&fams);
        assert!(text.contains(r#"path="a\"b\\c\nd""#), "{text}");
        assert_eq!(parse(&text).unwrap(), fams);
    }

    #[test]
    fn render_parse_round_trips_mixed_families() {
        let fams = vec![
            Family {
                name: "up".to_string(),
                help: String::new(),
                kind: MetricKind::Gauge,
                points: vec![plain(&[], 1.0)],
            },
            counter("hits_total", vec![plain(&[("tier", "hot")], 10.0)]),
            Family {
                name: "lat_seconds".to_string(),
                help: "with\nnewline and \\slash".to_string(),
                kind: MetricKind::Histogram,
                points: vec![Point {
                    labels: vec![("route".to_string(), "/run".to_string())],
                    value: PointValue::Histogram {
                        buckets: vec![(0.5, 0), (f64::INFINITY, 4)],
                        sum: 8.5,
                        count: 4,
                    },
                }],
            },
        ];
        assert_eq!(parse(&render(&fams)).unwrap(), fams);
    }

    #[test]
    fn parser_rejects_untyped_samples_and_bad_histograms() {
        assert!(parse("loose_metric 1\n")
            .unwrap_err()
            .contains("without a # TYPE"));
        let missing_inf = "\
# TYPE h histogram
h_bucket{le=\"1\"} 2
h_sum 1.0
h_count 2
";
        assert!(parse(missing_inf).unwrap_err().contains("+Inf"));
        let mismatch = "\
# TYPE h histogram
h_bucket{le=\"1\"} 2
h_bucket{le=\"+Inf\"} 2
h_sum 1.0
h_count 3
";
        assert!(parse(mismatch)
            .unwrap_err()
            .contains("disagrees with _count"));
        let non_cumulative = "\
# TYPE h histogram
h_bucket{le=\"1\"} 2
h_bucket{le=\"+Inf\"} 1
h_sum 1.0
h_count 1
";
        assert!(parse(non_cumulative)
            .unwrap_err()
            .contains("not cumulative"));
    }

    #[test]
    fn parser_rejects_duplicates_and_syntax_errors() {
        assert!(parse("# TYPE a counter\n# TYPE a counter\n")
            .unwrap_err()
            .contains("duplicate # TYPE"));
        assert!(parse("# TYPE a counter\na{x=\"1\"} 1\na{x=\"1\"} 2\n")
            .unwrap_err()
            .contains("duplicate sample"));
        assert!(parse("# TYPE a counter\na{x=1} 1\n")
            .unwrap_err()
            .contains("not quoted"));
        assert!(parse("# TYPE a counter\na nope\n")
            .unwrap_err()
            .contains("not a number"));
        assert!(parse("# TYPE a wat\n")
            .unwrap_err()
            .contains("unknown metric type"));
    }
}
