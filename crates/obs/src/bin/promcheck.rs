//! `promcheck`: validates Prometheus text exposition read from stdin
//! with the strict parser in [`obs::prom`]. Exit 0 when the input
//! parses and contains at least one metric family; exit 1 with a
//! diagnosis otherwise. CI pipes `curl /metrics` output through this.

use std::io::Read;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut text = String::new();
    if let Err(e) = std::io::stdin().read_to_string(&mut text) {
        eprintln!("promcheck: cannot read stdin: {e}");
        return ExitCode::FAILURE;
    }
    match obs::prom::parse(&text) {
        Ok(families) if families.is_empty() => {
            eprintln!("promcheck: no metric families in input");
            ExitCode::FAILURE
        }
        Ok(families) => {
            let points: usize = families.iter().map(|f| f.points.len()).sum();
            println!(
                "promcheck: ok — {} families, {} samples",
                families.len(),
                points
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("promcheck: invalid exposition: {e}");
            ExitCode::FAILURE
        }
    }
}
