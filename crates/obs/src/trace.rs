//! Chrome/Perfetto trace rendering: the JSON Array trace-event format
//! (`chrome://tracing`, <https://ui.perfetto.dev>) from generic spans
//! and counter series. The facade converts a traced run's
//! `PhaseBreakdown` + event log into these and `skp-plan run
//! --trace-out <file>` writes the result.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One complete (`ph:"X"`) span on a named track.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSpan {
    /// Track (rendered as a thread name) the span lives on.
    pub track: String,
    /// Span name.
    pub name: String,
    /// Start timestamp, microseconds.
    pub start_us: f64,
    /// Duration, microseconds.
    pub dur_us: f64,
}

/// One counter (`ph:"C"`) time series.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceCounter {
    /// Counter name (its own track in the viewer).
    pub name: String,
    /// `(timestamp_us, value)` samples in time order.
    pub points: Vec<(f64, f64)>,
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// Renders spans and counters as a Chrome trace-event JSON object:
/// `{"traceEvents":[...],"displayTimeUnit":"ms"}`. Tracks become
/// named threads of one process (`process`); track/thread ids are
/// assigned in order of first appearance, so output is deterministic.
pub fn render_chrome_trace(
    process: &str,
    spans: &[TraceSpan],
    counters: &[TraceCounter],
) -> String {
    let mut tids: BTreeMap<&str, u32> = BTreeMap::new();
    let mut order: Vec<&str> = Vec::new();
    for s in spans {
        tids.entry(&s.track).or_insert_with(|| {
            order.push(&s.track);
            order.len() as u32
        });
    }

    let mut events = Vec::new();
    events.push(format!(
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{{\"name\":\"{}\"}}}}",
        esc(process)
    ));
    for track in &order {
        events.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\"args\":{{\"name\":\"{}\"}}}}",
            tids[track],
            esc(track)
        ));
    }
    for s in spans {
        events.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"span\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{}}}",
            esc(&s.name),
            num(s.start_us),
            num(s.dur_us),
            tids[s.track.as_str()]
        ));
    }
    for c in counters {
        for (at, v) in &c.points {
            events.push(format!(
                "{{\"name\":\"{}\",\"ph\":\"C\",\"ts\":{},\"pid\":1,\"args\":{{\"value\":{}}}}}",
                esc(&c.name),
                num(*at),
                num(*v)
            ));
        }
    }
    format!(
        "{{\"traceEvents\":[{}],\"displayTimeUnit\":\"ms\"}}\n",
        events.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_metadata_spans_and_counters() {
        let spans = vec![
            TraceSpan {
                track: "engine".to_string(),
                name: "simulate".to_string(),
                start_us: 10.0,
                dur_us: 250.5,
            },
            TraceSpan {
                track: "shard 0".to_string(),
                name: "xfer demand".to_string(),
                start_us: 20.0,
                dur_us: 5.0,
            },
        ];
        let counters = vec![TraceCounter {
            name: "queue depth".to_string(),
            points: vec![(0.0, 3.0), (100.0, 1.0)],
        }];
        let out = render_chrome_trace("skp-plan run", &spans, &counters);
        assert!(out.starts_with("{\"traceEvents\":["));
        assert!(out.contains("\"process_name\""));
        assert!(out.contains("\"name\":\"engine\""));
        assert!(out.contains("\"name\":\"shard 0\""));
        assert!(out.contains("\"ph\":\"X\",\"ts\":10,\"dur\":250.5,\"pid\":1,\"tid\":1"));
        assert!(out.contains("\"ph\":\"C\",\"ts\":100,\"pid\":1,\"args\":{\"value\":1}"));
        assert!(out.ends_with("],\"displayTimeUnit\":\"ms\"}\n"));
    }

    #[test]
    fn track_ids_follow_first_appearance() {
        let spans: Vec<TraceSpan> = ["b", "a", "b"]
            .iter()
            .map(|t| TraceSpan {
                track: t.to_string(),
                name: "s".to_string(),
                start_us: 0.0,
                dur_us: 1.0,
            })
            .collect();
        let out = render_chrome_trace("p", &spans, &[]);
        let b_meta = out.find("\"tid\":1,\"args\":{\"name\":\"b\"}").unwrap();
        let a_meta = out.find("\"tid\":2,\"args\":{\"name\":\"a\"}").unwrap();
        assert!(b_meta < a_meta);
    }

    #[test]
    fn strings_are_json_escaped() {
        let spans = vec![TraceSpan {
            track: "t\"rack".to_string(),
            name: "a\\b\nc".to_string(),
            start_us: 0.0,
            dur_us: 1.0,
        }];
        let out = render_chrome_trace("p", &spans, &[]);
        assert!(out.contains("t\\\"rack"));
        assert!(out.contains("a\\\\b\\nc"));
    }
}
