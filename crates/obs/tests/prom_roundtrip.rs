//! Property test: anything `obs::prom::render` emits parses back
//! (`obs::prom::parse`) to equal families — label escaping, histogram
//! triples and all.

use obs::prom::{parse, render, Family, MetricKind, Point, PointValue};
use proptest::prelude::*;

fn label_name(i: usize) -> String {
    ["route", "tier", "shard", "kind"][i % 4].to_string()
}

type RawPoint = (Vec<(usize, String)>, u32, Vec<(u32, u32)>);
type RawFamily = (u32, String, Vec<RawPoint>);

fn build_family(index: usize, raw: &RawFamily) -> Family {
    let (kind_pick, help, raw_points) = raw;
    let kind = match kind_pick % 3 {
        0 => MetricKind::Counter,
        1 => MetricKind::Gauge,
        _ => MetricKind::Histogram,
    };
    let name = match kind {
        MetricKind::Counter => format!("c{index}_total"),
        MetricKind::Gauge => format!("g{index}"),
        MetricKind::Histogram => format!("h{index}_seconds"),
    };
    let mut points: Vec<Point> = Vec::new();
    for (raw_labels, value, raw_buckets) in raw_points {
        let mut labels: Vec<(String, String)> = Vec::new();
        for (pick, text) in raw_labels {
            let lname = label_name(*pick);
            if labels.iter().all(|(k, _)| *k != lname) {
                labels.push((lname, text.clone()));
            }
        }
        // One sample per label set: skip duplicates the renderer would
        // emit as (invalid) duplicate series.
        if points.iter().any(|p| p.labels == labels) {
            continue;
        }
        let value = match kind {
            MetricKind::Histogram => {
                let mut edge = 0u32;
                let mut cum = 0u64;
                let mut buckets = Vec::with_capacity(raw_buckets.len() + 1);
                for (edge_delta, inc) in raw_buckets {
                    edge += (*edge_delta).max(1);
                    cum += u64::from(*inc);
                    buckets.push((f64::from(edge) / 1000.0, cum));
                }
                buckets.push((f64::INFINITY, cum));
                PointValue::Histogram {
                    buckets,
                    sum: f64::from(*value) / 16.0,
                    count: cum,
                }
            }
            _ => PointValue::Value(f64::from(*value) / 16.0),
        };
        points.push(Point { labels, value });
    }
    Family {
        name,
        help: help.clone(),
        kind,
        points,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// parse ∘ render is the identity on arbitrary families.
    #[test]
    fn exposition_round_trips(
        raw in proptest::collection::vec(
            (
                0u32..3,
                ".{0,16}",
                proptest::collection::vec(
                    (
                        proptest::collection::vec((0usize..4, ".{0,10}"), 0..3),
                        0u32..100_000,
                        proptest::collection::vec((1u32..2000, 0u32..50), 1..4),
                    ),
                    0..4,
                ),
            ),
            1..5,
        )
    ) {
        let families: Vec<Family> = raw
            .iter()
            .enumerate()
            .map(|(i, f)| build_family(i, f))
            .collect();
        let text = render(&families);
        let parsed = parse(&text)
            .unwrap_or_else(|e| panic!("rendered text must parse: {e}\n---\n{text}"));
        prop_assert_eq!(parsed, families);
    }
}
