//! # cache-sim — client cache substrate
//!
//! The prefetcher of Section 5 "must contest the items already in the
//! cache". This crate provides that cache and everything around it:
//!
//! - [`cache`] — an equal-slot cache over a fixed item universe with
//!   LRU/FIFO recency bookkeeping;
//! - [`replacement`] — victim-selection policies: the paper's
//!   Pr-arbitration family (via `skp-core`) plus classic LRU, LFU, FIFO
//!   and Random baselines for ablations;
//! - [`integrated`] — [`integrated::PrefetchCache`], the full Section-5
//!   client: SKP/KP planning over non-cached items, Figure-6 arbitration,
//!   demand-fetch eviction and access-frequency tracking. This is the
//!   object the Figure-7 simulation drives.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod integrated;
pub mod replacement;
pub mod sized;

pub use cache::Cache;
pub use integrated::{PrefetchCache, PrefetchCacheConfig, StepOutcome};
pub use replacement::Replacement;
pub use sized::{SizedCache, SizedPrefetchCache};
