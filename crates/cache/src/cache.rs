//! An equal-slot cache over a fixed item universe `0..n`, with the
//! recency/insertion bookkeeping LRU and FIFO need.

/// Fixed-capacity, equal-slot cache. Membership and stamps are dense
/// (`Vec` indexed by item id), matching the paper's setting of a known
/// item universe.
#[derive(Debug, Clone)]
pub struct Cache {
    capacity: usize,
    present: Vec<bool>,
    last_used: Vec<u64>,
    inserted_at: Vec<u64>,
    occupants: Vec<usize>,
    tick: u64,
}

impl Cache {
    /// Creates an empty cache with `capacity` slots over `n_items` items.
    ///
    /// # Panics
    /// Panics when `capacity == 0`.
    pub fn new(capacity: usize, n_items: usize) -> Self {
        assert!(capacity >= 1, "cache needs at least one slot");
        Self {
            capacity,
            present: vec![false; n_items],
            last_used: vec![0; n_items],
            inserted_at: vec![0; n_items],
            occupants: Vec::with_capacity(capacity),
            tick: 0,
        }
    }

    /// Capacity in slots.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of items in the item universe.
    #[inline]
    pub fn n_items(&self) -> usize {
        self.present.len()
    }

    /// Number of occupied slots.
    #[inline]
    pub fn len(&self) -> usize {
        self.occupants.len()
    }

    /// Whether the cache is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.occupants.is_empty()
    }

    /// Number of free slots.
    #[inline]
    pub fn free_slots(&self) -> usize {
        self.capacity - self.occupants.len()
    }

    /// Whether `item` is cached.
    #[inline]
    pub fn contains(&self, item: usize) -> bool {
        self.present[item]
    }

    /// The cached item ids (unspecified order).
    #[inline]
    pub fn items(&self) -> &[usize] {
        &self.occupants
    }

    /// Marks an access to `item` for LRU recency. No-op if absent.
    pub fn touch(&mut self, item: usize) {
        self.tick += 1;
        if self.present[item] {
            self.last_used[item] = self.tick;
        }
    }

    /// Inserts `item` into a free slot.
    ///
    /// # Panics
    /// Panics when the cache is full or the item is already present —
    /// callers must evict first; silent double-insertion would corrupt
    /// slot accounting.
    pub fn insert(&mut self, item: usize) {
        assert!(self.free_slots() > 0, "cache full: evict before inserting");
        assert!(!self.present[item], "item {item} already cached");
        self.tick += 1;
        self.present[item] = true;
        self.last_used[item] = self.tick;
        self.inserted_at[item] = self.tick;
        self.occupants.push(item);
    }

    /// Removes `item`.
    ///
    /// # Panics
    /// Panics when the item is not cached.
    pub fn evict(&mut self, item: usize) {
        assert!(self.present[item], "item {item} not cached");
        self.present[item] = false;
        let pos = self
            .occupants
            .iter()
            .position(|&x| x == item)
            .expect("present implies occupant");
        self.occupants.swap_remove(pos);
    }

    /// Tick of the last access to `item` (for LRU; 0 = never).
    #[inline]
    pub fn last_used(&self, item: usize) -> u64 {
        self.last_used[item]
    }

    /// Tick at which `item` was inserted (for FIFO; 0 = never).
    #[inline]
    pub fn inserted_at(&self, item: usize) -> u64 {
        self.inserted_at[item]
    }

    /// Empties the cache (the 'prefetch only' simulation flushes between
    /// iterations).
    pub fn flush(&mut self) {
        for &i in &self.occupants {
            self.present[i] = false;
        }
        self.occupants.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_evict() {
        let mut c = Cache::new(2, 5);
        assert!(c.is_empty());
        c.insert(3);
        assert!(c.contains(3));
        assert_eq!(c.len(), 1);
        assert_eq!(c.free_slots(), 1);
        c.evict(3);
        assert!(!c.contains(3));
        assert!(c.is_empty());
    }

    #[test]
    #[should_panic(expected = "cache full")]
    fn insert_over_capacity_panics() {
        let mut c = Cache::new(1, 3);
        c.insert(0);
        c.insert(1);
    }

    #[test]
    #[should_panic(expected = "already cached")]
    fn double_insert_panics() {
        let mut c = Cache::new(2, 3);
        c.insert(0);
        c.insert(0);
    }

    #[test]
    #[should_panic(expected = "not cached")]
    fn evict_absent_panics() {
        let mut c = Cache::new(1, 3);
        c.evict(0);
    }

    #[test]
    fn lru_stamps_advance_on_touch() {
        let mut c = Cache::new(2, 3);
        c.insert(0);
        c.insert(1);
        let before = c.last_used(0);
        c.touch(0);
        assert!(c.last_used(0) > before);
        assert!(c.last_used(0) > c.last_used(1));
    }

    #[test]
    fn touch_absent_is_noop() {
        let mut c = Cache::new(1, 3);
        c.touch(2);
        assert_eq!(c.last_used(2), 0);
    }

    #[test]
    fn fifo_stamp_fixed_at_insertion() {
        let mut c = Cache::new(2, 3);
        c.insert(0);
        let at = c.inserted_at(0);
        c.touch(0);
        assert_eq!(c.inserted_at(0), at);
    }

    #[test]
    fn flush_empties() {
        let mut c = Cache::new(3, 5);
        c.insert(0);
        c.insert(4);
        c.flush();
        assert!(c.is_empty());
        assert!(!c.contains(0) && !c.contains(4));
        // Reusable after flush.
        c.insert(0);
        assert!(c.contains(0));
    }

    #[test]
    fn items_lists_occupants() {
        let mut c = Cache::new(3, 5);
        c.insert(1);
        c.insert(4);
        let mut items = c.items().to_vec();
        items.sort_unstable();
        assert_eq!(items, vec![1, 4]);
    }
}
