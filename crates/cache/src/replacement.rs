//! Victim-selection policies.
//!
//! The paper's family is Pr-arbitration with optional sub-arbitration
//! (Section 5.2), delegated to `skp_core::arbitration`; the classic
//! LRU/LFU/FIFO/Random policies are provided as ablation baselines (they
//! ignore the next-access probabilities the model supplies).

use access_model::FreqTracker;
use rand::seq::IndexedRandom;
use rand::Rng;
use skp_core::arbitration::{choose_demand_victim, CacheEntry, SubArbitration};
use skp_core::Scenario;

use crate::cache::Cache;

/// A victim-selection policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Replacement {
    /// Evict the least recently used item.
    Lru,
    /// Evict the least frequently used item (global frequency).
    Lfu,
    /// Evict the oldest inserted item.
    Fifo,
    /// Evict a uniformly random item.
    Random,
    /// The paper's Pr-arbitration: evict the minimum `P_d r_d` item, with
    /// the given sub-arbitration for ties.
    Pr(SubArbitration),
}

impl Replacement {
    /// Short display name for experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            Replacement::Lru => "LRU",
            Replacement::Lfu => "LFU",
            Replacement::Fifo => "FIFO",
            Replacement::Random => "Random",
            Replacement::Pr(SubArbitration::None) => "Pr",
            Replacement::Pr(SubArbitration::Lfu) => "Pr+LFU",
            Replacement::Pr(SubArbitration::DelaySaving) => "Pr+DS",
        }
    }

    /// Chooses a victim from the cache. Returns `None` when empty.
    ///
    /// `scenario` supplies the `P` and `r` vectors for the `Pr` family;
    /// `freq` supplies frequencies for LFU and the sub-arbitrations.
    pub fn choose(
        &self,
        cache: &Cache,
        scenario: &Scenario,
        freq: &FreqTracker,
        rng: &mut impl Rng,
    ) -> Option<usize> {
        let items = cache.items();
        if items.is_empty() {
            return None;
        }
        match self {
            Replacement::Lru => items.iter().copied().min_by_key(|&i| cache.last_used(i)),
            Replacement::Fifo => items.iter().copied().min_by_key(|&i| cache.inserted_at(i)),
            Replacement::Lfu => items.iter().copied().min_by_key(|&i| freq.freq(i)),
            Replacement::Random => items.choose(rng).copied(),
            Replacement::Pr(sub) => {
                let entries: Vec<CacheEntry> = items
                    .iter()
                    .map(|&id| CacheEntry {
                        id,
                        freq: freq.freq(id),
                    })
                    .collect();
                choose_demand_victim(scenario, &entries, *sub)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn setup() -> (Cache, Scenario, FreqTracker, SmallRng) {
        let mut cache = Cache::new(3, 5);
        cache.insert(0);
        cache.insert(1);
        cache.insert(2);
        // P r profiles: item0 = 0.5*2=1.0, item1 = 0.1*8=0.8, item2 = 0.
        let s = Scenario::new(
            vec![0.5, 0.1, 0.0, 0.2, 0.2],
            vec![2.0, 8.0, 4.0, 1.0, 1.0],
            10.0,
        )
        .unwrap();
        let mut freq = FreqTracker::new(5);
        freq.record(0);
        freq.record(0);
        freq.record(1);
        (cache, s, freq, SmallRng::seed_from_u64(3))
    }

    #[test]
    fn lru_evicts_least_recent() {
        let (mut cache, s, freq, mut rng) = setup();
        cache.touch(0);
        cache.touch(1); // item 2 least recently used
        let v = Replacement::Lru.choose(&cache, &s, &freq, &mut rng);
        assert_eq!(v, Some(2));
    }

    #[test]
    fn fifo_evicts_oldest() {
        let (mut cache, s, freq, mut rng) = setup();
        cache.touch(0); // recency must not matter
        let v = Replacement::Fifo.choose(&cache, &s, &freq, &mut rng);
        assert_eq!(v, Some(0));
    }

    #[test]
    fn lfu_evicts_least_frequent() {
        let (cache, s, freq, mut rng) = setup();
        // freqs: 0 -> 2, 1 -> 1, 2 -> 0
        let v = Replacement::Lfu.choose(&cache, &s, &freq, &mut rng);
        assert_eq!(v, Some(2));
    }

    #[test]
    fn pr_evicts_minimum_delay_profit() {
        let (cache, s, freq, mut rng) = setup();
        // P r: item2 = 0 is the cheapest.
        let v = Replacement::Pr(SubArbitration::None).choose(&cache, &s, &freq, &mut rng);
        assert_eq!(v, Some(2));
    }

    #[test]
    fn random_picks_a_cached_item() {
        let (cache, s, freq, mut rng) = setup();
        for _ in 0..20 {
            let v = Replacement::Random
                .choose(&cache, &s, &freq, &mut rng)
                .unwrap();
            assert!(cache.contains(v));
        }
    }

    #[test]
    fn empty_cache_yields_none() {
        let cache = Cache::new(2, 5);
        let (_, s, freq, mut rng) = setup();
        for pol in [
            Replacement::Lru,
            Replacement::Lfu,
            Replacement::Fifo,
            Replacement::Random,
            Replacement::Pr(SubArbitration::DelaySaving),
        ] {
            assert_eq!(pol.choose(&cache, &s, &freq, &mut rng), None);
        }
    }

    #[test]
    fn names_distinct() {
        let all = [
            Replacement::Lru,
            Replacement::Lfu,
            Replacement::Fifo,
            Replacement::Random,
            Replacement::Pr(SubArbitration::None),
            Replacement::Pr(SubArbitration::Lfu),
            Replacement::Pr(SubArbitration::DelaySaving),
        ];
        let names: std::collections::HashSet<_> = all.iter().map(|p| p.name()).collect();
        assert_eq!(names.len(), all.len());
    }
}
