//! The integrated prefetch–cache client of Section 5: plan over non-cached
//! items, arbitrate against the cache (Figure 6), serve the request, and
//! account for the demand fetch — one `step` per request.
//!
//! This is the object the Figure-7 simulation drives with a Markov source:
//! policies `No+Pr`, `KP+Pr`, `SKP+Pr`, `SKP+Pr+LFU` and `SKP+Pr+DS` are
//! all configurations of [`PrefetchCacheConfig`].
//!
//! ```
//! use cache_sim::{PrefetchCache, PrefetchCacheConfig};
//! use skp_core::arbitration::{PlanSolver, SubArbitration};
//! use skp_core::Scenario;
//!
//! let cfg = PrefetchCacheConfig {
//!     solver: PlanSolver::SkpExact,
//!     sub: SubArbitration::DelaySaving,
//!     capacity: 2,
//! };
//! let mut client = PrefetchCache::new(cfg, 3);
//! let s = Scenario::new(vec![0.7, 0.2, 0.1], vec![4.0, 6.0, 8.0], 10.0).unwrap();
//! let out = client.step(&s, 0); // item 0 was planned: served instantly
//! assert!(out.hit && out.access_time == 0.0);
//! ```

use access_model::FreqTracker;
use skp_core::arbitration::{
    arbitrate, choose_demand_victim, CacheEntry, PlanSolver, SubArbitration,
};
use skp_core::gain::stretch_time;
use skp_core::{PrefetchPlan, Scenario};

use crate::cache::Cache;

/// Configuration of the integrated client.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrefetchCacheConfig {
    /// Planner for the tentative prefetch list `F̂` over non-cached items.
    pub solver: PlanSolver,
    /// Sub-arbitration for Pr ties (Section 5.2).
    pub sub: SubArbitration,
    /// Cache capacity in slots (equal item sizes).
    pub capacity: usize,
}

impl PrefetchCacheConfig {
    /// The paper's five Figure-7 policies, in plot order, with the SKP
    /// entries backed by the verbatim Figure-3 solver.
    pub fn figure7_policies(capacity: usize) -> [(&'static str, Self); 5] {
        Self::figure7_policies_with(capacity, PlanSolver::SkpPaper)
    }

    /// The Figure-7 policy table with a chosen solver behind the three
    /// `SKP+Pr*` entries (`SkpPaper` for strict pseudocode fidelity,
    /// `SkpExact` for the corrected bookkeeping; see `skp_core::skp`).
    pub fn figure7_policies_with(capacity: usize, skp: PlanSolver) -> [(&'static str, Self); 5] {
        [
            (
                "No+Pr",
                Self {
                    solver: PlanSolver::None,
                    sub: SubArbitration::None,
                    capacity,
                },
            ),
            (
                "KP+Pr",
                Self {
                    solver: PlanSolver::Kp,
                    sub: SubArbitration::None,
                    capacity,
                },
            ),
            (
                "SKP+Pr",
                Self {
                    solver: skp,
                    sub: SubArbitration::None,
                    capacity,
                },
            ),
            (
                "SKP+Pr+LFU",
                Self {
                    solver: skp,
                    sub: SubArbitration::Lfu,
                    capacity,
                },
            ),
            (
                "SKP+Pr+DS",
                Self {
                    solver: skp,
                    sub: SubArbitration::DelaySaving,
                    capacity,
                },
            ),
        ]
    }
}

/// Everything one request cycle did.
#[derive(Debug, Clone, PartialEq)]
pub struct StepOutcome {
    /// The access time `T` of this request under the paper's timing model.
    pub access_time: f64,
    /// Whether the request was served in zero time (cache or completed
    /// prefetch).
    pub hit: bool,
    /// Items prefetched this cycle (after arbitration), in prefetch order.
    pub prefetched: Vec<usize>,
    /// Cache items ejected by arbitration.
    pub ejected: Vec<usize>,
    /// Victim of the demand fetch, if one was needed on a full cache.
    pub demand_victim: Option<usize>,
    /// Whether the request required a demand fetch.
    pub demand_fetch: bool,
    /// Stretch time of the executed plan.
    pub stretch: f64,
    /// Retrieval time spent prefetching items that were *not* requested —
    /// the wasted network usage of Section 6.
    pub wasted_retrieval: f64,
}

/// The integrated prefetch–cache client.
#[derive(Debug, Clone)]
pub struct PrefetchCache {
    cfg: PrefetchCacheConfig,
    cache: Cache,
    freq: FreqTracker,
}

impl PrefetchCache {
    /// Creates an empty client over `n_items`.
    pub fn new(cfg: PrefetchCacheConfig, n_items: usize) -> Self {
        Self {
            cache: Cache::new(cfg.capacity, n_items),
            freq: FreqTracker::new(n_items),
            cfg,
        }
    }

    /// The underlying cache (for inspection).
    pub fn cache(&self) -> &Cache {
        &self.cache
    }

    /// The frequency statistics (for inspection).
    pub fn freq(&self) -> &FreqTracker {
        &self.freq
    }

    /// Runs one request cycle: prefetch during the viewing time encoded in
    /// `scenario`, then serve the request `alpha`.
    ///
    /// # Panics
    /// Panics when `scenario.n()` differs from the item universe or
    /// `alpha` is out of range.
    pub fn step(&mut self, scenario: &Scenario, alpha: usize) -> StepOutcome {
        assert_eq!(
            scenario.n(),
            self.cache.n_items(),
            "scenario and cache must share the item universe"
        );
        // Tentative plan over non-cached candidates with the configured
        // solver, then the shared cycle.
        let tentative = self.cfg.solver.solve(scenario, &self.candidate_mask()).plan;
        self.step_with_plan(scenario, alpha, tentative)
    }

    /// Candidate mask for planning: `true` for every non-cached item.
    pub fn candidate_mask(&self) -> Vec<bool> {
        (0..self.cache.n_items())
            .map(|i| !self.cache.contains(i))
            .collect()
    }

    /// Runs one request cycle with an externally produced tentative plan
    /// (any [`skp_core::policy::Prefetcher`], not just the built-in
    /// [`PlanSolver`] kinds). The plan must cover only non-cached items;
    /// cached entries in it are ignored by arbitration pairing but waste
    /// no slots.
    ///
    /// # Panics
    /// Panics when `scenario.n()` differs from the item universe or
    /// `alpha` is out of range.
    pub fn step_with_plan(
        &mut self,
        scenario: &Scenario,
        alpha: usize,
        tentative: PrefetchPlan,
    ) -> StepOutcome {
        assert_eq!(
            scenario.n(),
            self.cache.n_items(),
            "scenario and cache must share the item universe"
        );
        assert!(alpha < scenario.n(), "request out of range");

        // Figure-6 arbitration against the cache.
        let entries: Vec<CacheEntry> = self
            .cache
            .items()
            .iter()
            .map(|&id| CacheEntry {
                id,
                freq: self.freq.freq(id),
            })
            .collect();
        let arb = arbitrate(
            scenario,
            &tentative,
            &entries,
            self.cache.free_slots(),
            self.cfg.sub,
        );

        // Access time from the pre-application cache state (Section 5
        // case analysis).
        let st = stretch_time(scenario, &arb.prefetch);
        let in_kept_cache = self.cache.contains(alpha) && !arb.eject.contains(&alpha);
        let (access_time, hit, demand_fetch) = if in_kept_cache {
            (0.0, true, false)
        } else if let Some(pos) = arb.prefetch.iter().position(|&i| i == alpha) {
            if pos + 1 == arb.prefetch.len() {
                (st, st == 0.0, false) // the stretching last item
            } else {
                (0.0, true, false) // fully prefetched prefix
            }
        } else {
            (st + scenario.retrieval(alpha), false, true)
        };

        // Apply ejections and insertions.
        for &d in &arb.eject {
            self.cache.evict(d);
        }
        for &f in &arb.prefetch {
            self.cache.insert(f);
        }

        // Demand fetch brings `alpha` into the cache, evicting a
        // minimum-Pr victim when full (it "must have a victim").
        let mut demand_victim = None;
        if demand_fetch && !self.cache.contains(alpha) {
            if self.cache.free_slots() == 0 {
                let entries: Vec<CacheEntry> = self
                    .cache
                    .items()
                    .iter()
                    .map(|&id| CacheEntry {
                        id,
                        freq: self.freq.freq(id),
                    })
                    .collect();
                let v = choose_demand_victim(scenario, &entries, self.cfg.sub)
                    .expect("full cache has a victim");
                self.cache.evict(v);
                demand_victim = Some(v);
            }
            self.cache.insert(alpha);
        }

        // Statistics.
        self.freq.record(alpha);
        self.cache.touch(alpha);

        let wasted_retrieval = arb
            .prefetch
            .iter()
            .filter(|&&i| i != alpha)
            .map(|&i| scenario.retrieval(i))
            .sum();

        StepOutcome {
            access_time,
            hit,
            prefetched: arb.prefetch,
            ejected: arb.eject,
            demand_victim,
            demand_fetch,
            stretch: st,
            wasted_retrieval,
        }
    }

    /// Empties the cache and statistics (fresh run).
    pub fn reset(&mut self) {
        self.cache.flush();
        self.freq.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario(viewing: f64) -> Scenario {
        Scenario::new(
            vec![0.5, 0.3, 0.1, 0.1, 0.0],
            vec![4.0, 6.0, 8.0, 2.0, 5.0],
            viewing,
        )
        .unwrap()
    }

    fn client(solver: PlanSolver, sub: SubArbitration, capacity: usize) -> PrefetchCache {
        PrefetchCache::new(
            PrefetchCacheConfig {
                solver,
                sub,
                capacity,
            },
            5,
        )
    }

    #[test]
    fn no_prefetch_demand_fills_cache() {
        let mut c = client(PlanSolver::None, SubArbitration::None, 2);
        let s = scenario(10.0);
        let o = c.step(&s, 1);
        assert!(!o.hit);
        assert!(o.demand_fetch);
        assert_eq!(o.access_time, 6.0);
        assert!(c.cache().contains(1));
        // Second access to the same item is a hit.
        let o = c.step(&s, 1);
        assert!(o.hit);
        assert_eq!(o.access_time, 0.0);
    }

    #[test]
    fn prefetched_item_is_hit() {
        let mut c = client(PlanSolver::SkpPaper, SubArbitration::None, 4);
        let s = scenario(12.0);
        // v = 12 fits items 0 and 1 (r 4+6 = 10): both should prefetch.
        let o = c.step(&s, 0);
        assert!(o.prefetched.contains(&0));
        assert!(o.hit, "outcome {o:?}");
        assert_eq!(o.access_time, 0.0);
    }

    #[test]
    fn stretching_tail_costs_stretch_time() {
        // viewing 5: plan [0 (r4), 1 (r6)] stretches by 5 if chosen.
        let mut c = client(PlanSolver::SkpExact, SubArbitration::None, 4);
        let s = scenario(5.0);
        let o = c.step(&s, 1);
        if o.prefetched.last() == Some(&1) {
            assert!((o.access_time - o.stretch).abs() < 1e-9);
        }
    }

    #[test]
    fn demand_fetch_evicts_when_full() {
        let mut c = client(PlanSolver::None, SubArbitration::None, 1);
        let s = scenario(10.0);
        c.step(&s, 4); // cache: {4} (P=0 item)
        let o = c.step(&s, 0); // miss; cache full -> evict 4
        assert_eq!(o.demand_victim, Some(4));
        assert!(c.cache().contains(0));
        assert!(!c.cache().contains(4));
    }

    #[test]
    fn miss_pays_stretch_plus_retrieval() {
        let mut c = client(PlanSolver::SkpExact, SubArbitration::None, 4);
        let s = scenario(5.0);
        let o = c.step(&s, 4); // P=0 item never prefetched
        assert!(o.demand_fetch);
        assert!((o.access_time - (o.stretch + 5.0)).abs() < 1e-9);
    }

    #[test]
    fn cache_never_exceeds_capacity() {
        let mut c = client(PlanSolver::SkpPaper, SubArbitration::DelaySaving, 2);
        let s = scenario(15.0);
        for alpha in [0usize, 1, 2, 3, 4, 0, 2, 1] {
            c.step(&s, alpha);
            assert!(c.cache().len() <= 2);
        }
    }

    #[test]
    fn wasted_retrieval_excludes_the_request() {
        let mut c = client(PlanSolver::SkpPaper, SubArbitration::None, 4);
        let s = scenario(12.0);
        let o = c.step(&s, 0);
        let total: f64 = o.prefetched.iter().map(|&i| s.retrieval(i)).sum();
        assert!((o.wasted_retrieval - (total - 4.0)).abs() < 1e-9);
    }

    #[test]
    fn frequencies_recorded() {
        let mut c = client(PlanSolver::None, SubArbitration::None, 2);
        let s = scenario(10.0);
        c.step(&s, 3);
        c.step(&s, 3);
        c.step(&s, 1);
        assert_eq!(c.freq().freq(3), 2);
        assert_eq!(c.freq().freq(1), 1);
    }

    #[test]
    fn reset_restores_fresh_state() {
        let mut c = client(PlanSolver::None, SubArbitration::None, 2);
        let s = scenario(10.0);
        c.step(&s, 1);
        c.reset();
        assert!(c.cache().is_empty());
        assert_eq!(c.freq().total(), 0);
    }

    #[test]
    fn figure7_policy_table_is_complete() {
        let pols = PrefetchCacheConfig::figure7_policies(10);
        let names: Vec<&str> = pols.iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            vec!["No+Pr", "KP+Pr", "SKP+Pr", "SKP+Pr+LFU", "SKP+Pr+DS"]
        );
        assert!(pols.iter().all(|(_, c)| c.capacity == 10));
    }

    #[test]
    #[should_panic(expected = "share the item universe")]
    fn scenario_size_mismatch_panics() {
        let mut c = client(PlanSolver::None, SubArbitration::None, 2);
        let s = Scenario::new(vec![1.0], vec![1.0], 1.0).unwrap();
        c.step(&s, 0);
    }
}
