//! Byte-addressed cache and integrated client for **unequal item sizes** —
//! the extension the paper is "currently addressing" (Section 6),
//! end-to-end: planning, size-aware arbitration
//! ([`skp_core::ext::sizes`]), demand fetches with multi-victim eviction,
//! and the same access-time accounting as the equal-size client.

use access_model::FreqTracker;
use skp_core::arbitration::PlanSolver;
use skp_core::ext::sizes::{arbitrate_sized, SizedEntry};
use skp_core::gain::stretch_time;
use skp_core::Scenario;

/// A cache holding whole items with heterogeneous sizes in a byte budget.
#[derive(Debug, Clone)]
pub struct SizedCache {
    capacity: f64,
    used: f64,
    sizes: Vec<f64>,
    present: Vec<bool>,
    occupants: Vec<usize>,
}

impl SizedCache {
    /// Creates an empty cache of `capacity` bytes over items with the
    /// given sizes.
    ///
    /// # Panics
    /// Panics when the capacity or any size is non-positive or NaN.
    pub fn new(capacity: f64, sizes: Vec<f64>) -> Self {
        assert!(
            capacity.is_finite() && capacity > 0.0,
            "capacity must be positive"
        );
        for (i, &s) in sizes.iter().enumerate() {
            assert!(s.is_finite() && s > 0.0, "item {i} has invalid size {s}");
        }
        Self {
            capacity,
            used: 0.0,
            present: vec![false; sizes.len()],
            occupants: Vec::new(),
            sizes,
        }
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Bytes currently used.
    pub fn used(&self) -> f64 {
        self.used
    }

    /// Bytes free.
    pub fn free(&self) -> f64 {
        self.capacity - self.used
    }

    /// Whether `item` is cached.
    pub fn contains(&self, item: usize) -> bool {
        self.present[item]
    }

    /// Cached items (unspecified order).
    pub fn items(&self) -> &[usize] {
        &self.occupants
    }

    /// Inserts an item.
    ///
    /// # Panics
    /// Panics when it does not fit or is already present.
    pub fn insert(&mut self, item: usize) {
        assert!(!self.present[item], "item {item} already cached");
        assert!(
            self.sizes[item] <= self.free() + 1e-9,
            "item {item} does not fit ({} > {})",
            self.sizes[item],
            self.free()
        );
        self.present[item] = true;
        self.used += self.sizes[item];
        self.occupants.push(item);
    }

    /// Evicts an item.
    ///
    /// # Panics
    /// Panics when the item is not cached.
    pub fn evict(&mut self, item: usize) {
        assert!(self.present[item], "item {item} not cached");
        self.present[item] = false;
        self.used -= self.sizes[item];
        let pos = self
            .occupants
            .iter()
            .position(|&x| x == item)
            .expect("present implies occupant");
        self.occupants.swap_remove(pos);
    }

    fn entries(&self) -> Vec<SizedEntry> {
        self.occupants
            .iter()
            .map(|&id| SizedEntry {
                id,
                size: self.sizes[id],
            })
            .collect()
    }
}

/// Outcome of one sized-client request cycle.
#[derive(Debug, Clone, PartialEq)]
pub struct SizedStepOutcome {
    /// Access time under the paper's timing model.
    pub access_time: f64,
    /// Served in zero time?
    pub hit: bool,
    /// Prefetched items this cycle.
    pub prefetched: Vec<usize>,
    /// Ejected items this cycle (arbitration + demand evictions).
    pub ejected: Vec<usize>,
    /// Whether a demand fetch happened.
    pub demand_fetch: bool,
}

/// Integrated prefetch–cache client over a byte-addressed cache.
#[derive(Debug, Clone)]
pub struct SizedPrefetchCache {
    cache: SizedCache,
    freq: FreqTracker,
    solver: PlanSolver,
}

impl SizedPrefetchCache {
    /// Creates an empty client.
    pub fn new(capacity_bytes: f64, sizes: Vec<f64>, solver: PlanSolver) -> Self {
        let n = sizes.len();
        Self {
            cache: SizedCache::new(capacity_bytes, sizes),
            freq: FreqTracker::new(n),
            solver,
        }
    }

    /// The underlying cache.
    pub fn cache(&self) -> &SizedCache {
        &self.cache
    }

    /// One request cycle (plan → size-aware arbitrate → serve → demand).
    pub fn step(&mut self, scenario: &Scenario, alpha: usize) -> SizedStepOutcome {
        assert_eq!(scenario.n(), self.cache.sizes.len(), "universe mismatch");
        let n = scenario.n();

        // Plan over non-cached items.
        let candidates: Vec<bool> = (0..n).map(|i| !self.cache.contains(i)).collect();
        let tentative = self.solver.solve(scenario, &candidates).plan;
        let tentative_sized: Vec<SizedEntry> = tentative
            .items()
            .iter()
            .map(|&id| SizedEntry {
                id,
                size: self.cache.sizes[id],
            })
            .collect();

        let arb = arbitrate_sized(
            scenario,
            &tentative_sized,
            &self.cache.entries(),
            self.cache.free(),
            self.cache.capacity(),
        )
        .expect("sizes validated at construction");

        // Access time from the pre-application state.
        let st = stretch_time(scenario, &arb.prefetch);
        let in_kept_cache = self.cache.contains(alpha) && !arb.eject.contains(&alpha);
        let (access_time, hit, demand_fetch) = if in_kept_cache {
            (0.0, true, false)
        } else if let Some(pos) = arb.prefetch.iter().position(|&i| i == alpha) {
            if pos + 1 == arb.prefetch.len() {
                (st, st == 0.0, false)
            } else {
                (0.0, true, false)
            }
        } else {
            (st + scenario.retrieval(alpha), false, true)
        };

        // Apply.
        let mut ejected = arb.eject.clone();
        for &d in &arb.eject {
            self.cache.evict(d);
        }
        for &f in &arb.prefetch {
            self.cache.insert(f);
        }

        // Demand fetch: evict cheapest delay-profit densities until the
        // item fits (it "must have a victim").
        if demand_fetch
            && !self.cache.contains(alpha)
            && self.cache.sizes[alpha] <= self.cache.capacity()
        {
            while self.cache.free() + 1e-9 < self.cache.sizes[alpha] {
                let victim = self
                    .cache
                    .items()
                    .iter()
                    .copied()
                    .min_by(|&a, &b| {
                        let da = scenario.delay_profit(a) / self.cache.sizes[a];
                        let db = scenario.delay_profit(b) / self.cache.sizes[b];
                        da.total_cmp(&db)
                    })
                    .expect("cache non-empty while item does not fit");
                self.cache.evict(victim);
                ejected.push(victim);
            }
            self.cache.insert(alpha);
        }

        self.freq.record(alpha);

        SizedStepOutcome {
            access_time,
            hit,
            prefetched: arb.prefetch,
            ejected,
            demand_fetch,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario() -> Scenario {
        Scenario::new(
            vec![0.4, 0.3, 0.2, 0.1, 0.0],
            vec![6.0, 5.0, 9.0, 2.0, 5.0],
            12.0,
        )
        .unwrap()
    }

    fn sizes() -> Vec<f64> {
        vec![4.0, 2.0, 6.0, 1.0, 3.0]
    }

    #[test]
    fn cache_accounting() {
        let mut c = SizedCache::new(10.0, sizes());
        c.insert(0);
        c.insert(2);
        assert_eq!(c.used(), 10.0);
        assert_eq!(c.free(), 0.0);
        c.evict(0);
        assert_eq!(c.used(), 6.0);
        assert!(c.contains(2) && !c.contains(0));
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn overfull_insert_panics() {
        let mut c = SizedCache::new(5.0, sizes());
        c.insert(0);
        c.insert(1); // 4 + 2 > 5
    }

    #[test]
    fn prefetched_items_hit() {
        let mut client = SizedPrefetchCache::new(20.0, sizes(), PlanSolver::SkpExact);
        let s = scenario();
        let out = client.step(&s, 0);
        assert!(out.prefetched.contains(&0));
        assert!(out.hit);
        assert_eq!(out.access_time, 0.0);
    }

    #[test]
    fn demand_fetch_evicts_enough_bytes() {
        let mut client = SizedPrefetchCache::new(6.0, sizes(), PlanSolver::None);
        let s = scenario();
        // Fill with items 1 (2B) and 4 (3B): 5 of 6 bytes used.
        client.step(&s, 1);
        client.step(&s, 4);
        assert!(client.cache().contains(1) && client.cache().contains(4));
        // Demand item 2 (6B): must evict until it fits.
        let out = client.step(&s, 2);
        assert!(out.demand_fetch);
        assert!(client.cache().contains(2));
        assert!(client.cache().used() <= 6.0 + 1e-9);
        assert!(!out.ejected.is_empty());
    }

    #[test]
    fn byte_budget_never_exceeded() {
        let mut client = SizedPrefetchCache::new(7.0, sizes(), PlanSolver::SkpPaper);
        let s = scenario();
        for alpha in [0usize, 2, 1, 3, 4, 2, 0, 1, 2, 4] {
            client.step(&s, alpha);
            assert!(
                client.cache().used() <= 7.0 + 1e-9,
                "budget exceeded: {}",
                client.cache().used()
            );
        }
    }

    #[test]
    fn oversized_demand_is_served_but_not_cached() {
        let tiny_sizes = vec![100.0, 1.0];
        let s = Scenario::new(vec![0.5, 0.5], vec![5.0, 5.0], 3.0).unwrap();
        let mut client = SizedPrefetchCache::new(2.0, tiny_sizes, PlanSolver::None);
        let out = client.step(&s, 0);
        assert!(out.demand_fetch);
        assert!(!client.cache().contains(0));
    }

    #[test]
    fn sized_beats_nothing_on_repeats() {
        // Repeated accesses to the same working set should become hits.
        let mut client = SizedPrefetchCache::new(10.0, sizes(), PlanSolver::SkpExact);
        let s = scenario();
        let mut last_round_time = f64::INFINITY;
        for round in 0..3 {
            let mut total = 0.0;
            for alpha in [0usize, 1, 3] {
                total += client.step(&s, alpha).access_time;
            }
            if round > 0 {
                assert!(total <= last_round_time + 1e-9);
            }
            last_round_time = total;
        }
        assert_eq!(last_round_time, 0.0, "working set fits: all hits");
    }
}
