//! Property tests: cache bookkeeping under arbitrary operation sequences
//! and invariants of the integrated prefetch–cache client.

use proptest::prelude::*;
use skp_core::arbitration::{PlanSolver, SubArbitration};
use skp_core::Scenario;

use cache_sim::{Cache, PrefetchCache, PrefetchCacheConfig};

/// Reference model: a plain set with capacity.
#[derive(Default)]
struct ModelCache {
    items: std::collections::BTreeSet<usize>,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The cache agrees with a naive set model under random
    /// insert/evict/touch sequences that respect the preconditions.
    #[test]
    fn cache_matches_set_model(
        ops in proptest::collection::vec((0u8..3, 0usize..8), 1..60),
        capacity in 1usize..6,
    ) {
        let mut cache = Cache::new(capacity, 8);
        let mut model = ModelCache::default();
        for (op, item) in ops {
            match op {
                0 => {
                    // insert when legal
                    if !model.items.contains(&item) && model.items.len() < capacity {
                        cache.insert(item);
                        model.items.insert(item);
                    }
                }
                1 => {
                    if model.items.contains(&item) {
                        cache.evict(item);
                        model.items.remove(&item);
                    }
                }
                _ => cache.touch(item),
            }
            // Invariants after every step.
            prop_assert_eq!(cache.len(), model.items.len());
            prop_assert!(cache.len() <= capacity);
            for i in 0..8 {
                prop_assert_eq!(cache.contains(i), model.items.contains(&i), "item {}", i);
            }
            let mut got: Vec<usize> = cache.items().to_vec();
            got.sort_unstable();
            let want: Vec<usize> = model.items.iter().copied().collect();
            prop_assert_eq!(got, want);
        }
    }

    /// LRU stamps are monotone: a touched present item always has the
    /// strictly largest stamp.
    #[test]
    fn touch_makes_most_recent(
        preload in proptest::collection::btree_set(0usize..8, 2..6),
        touched in 0usize..8,
    ) {
        let mut cache = Cache::new(8, 8);
        for &i in &preload {
            cache.insert(i);
        }
        if preload.contains(&touched) {
            cache.touch(touched);
            for &i in &preload {
                if i != touched {
                    prop_assert!(cache.last_used(touched) > cache.last_used(i));
                }
            }
        }
    }
}

/// Invariants of the integrated client under random request streams.
mod integrated_props {
    use super::*;

    fn random_scenario(seed: &[f64], viewing: f64) -> Scenario {
        let sum: f64 = seed.iter().sum();
        let probs: Vec<f64> = seed.iter().map(|w| w / sum).collect();
        let retrievals: Vec<f64> = (0..seed.len()).map(|i| 1.0 + (i % 7) as f64).collect();
        Scenario::new(probs, retrievals, viewing).expect("valid")
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn client_never_overflows_or_loses_items(
            weights in proptest::collection::vec(0.01f64..1.0, 6),
            requests in proptest::collection::vec(0usize..6, 1..40),
            viewing in 1.0f64..20.0,
            capacity in 1usize..5,
            solver_pick in 0u8..3,
            sub_pick in 0u8..3,
        ) {
            let solver = match solver_pick {
                0 => PlanSolver::None,
                1 => PlanSolver::Kp,
                _ => PlanSolver::SkpExact,
            };
            let sub = match sub_pick {
                0 => SubArbitration::None,
                1 => SubArbitration::Lfu,
                _ => SubArbitration::DelaySaving,
            };
            let s = random_scenario(&weights, viewing);
            let mut client = PrefetchCache::new(
                PrefetchCacheConfig { solver, sub, capacity },
                6,
            );
            for &alpha in &requests {
                let out = client.step(&s, alpha);
                // Cache never exceeds capacity.
                prop_assert!(client.cache().len() <= capacity);
                // Access time is non-negative and bounded by st + max r.
                prop_assert!(out.access_time >= 0.0);
                prop_assert!(out.access_time <= out.stretch + 7.0 + 1e-9);
                // A hit is exactly a zero access time.
                prop_assert_eq!(out.hit, out.access_time == 0.0);
                // Ejections only happen alongside prefetches (pairing).
                prop_assert!(out.ejected.len() <= out.prefetched.len());
                // An ejected item stays out — unless it re-entered in the
                // same cycle (as the demand-fetched request itself, which
                // arbitration may have evicted speculatively).
                for d in &out.ejected {
                    prop_assert!(
                        !client.cache().contains(*d)
                            || out.prefetched.contains(d)
                            || *d == alpha
                    );
                }
                // The requested item ends up cached unless it can't fit at
                // all (capacity ≥ 1 means it always can).
                prop_assert!(client.cache().contains(alpha));
            }
        }

        /// Pure demand caching at capacity ≥ n is eventually all hits.
        #[test]
        fn big_cache_converges_to_hits(
            weights in proptest::collection::vec(0.01f64..1.0, 5),
            stream in proptest::collection::vec(0usize..5, 10..30),
        ) {
            let s = random_scenario(&weights, 5.0);
            let mut client = PrefetchCache::new(
                PrefetchCacheConfig {
                    solver: PlanSolver::None,
                    sub: SubArbitration::None,
                    capacity: 5,
                },
                5,
            );
            // Seed every item once.
            for alpha in 0..5 {
                client.step(&s, alpha);
            }
            for &alpha in &stream {
                let out = client.step(&s, alpha);
                prop_assert!(out.hit, "everything fits: all hits");
            }
        }
    }
}
