//! Criterion benchmark crate (benchmarks live in benches/).
