//! Figure-4 harness benchmark: throughput of the 'prefetch only'
//! simulation that generates the scatter panels (SKP and KP prefetch on
//! skewy and flat workloads).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use speculative_prefetch::{PolicyKind, PrefetchOnlySim, ProbMethod, ScenarioGen};
use std::hint::black_box;

const ITERS: u64 = 2_000;

fn bench_fig4_panels(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_scatter");
    g.throughput(Throughput::Elements(ITERS));
    g.sample_size(10);

    let panels = [
        ("a_skp_skewy", PolicyKind::SkpPaper, ProbMethod::skewy()),
        ("b_skp_flat", PolicyKind::SkpPaper, ProbMethod::flat()),
        ("c_kp_skewy", PolicyKind::Kp, ProbMethod::skewy()),
        ("d_kp_flat", PolicyKind::Kp, ProbMethod::flat()),
    ];
    for (label, policy, method) in panels {
        let sim = PrefetchOnlySim {
            gen: ScenarioGen::paper(10, method),
            iterations: ITERS,
            seed: 1999,
            threads: 1,
            chunks: 1,
        };
        g.bench_function(BenchmarkId::new("panel", label), |b| {
            b.iter(|| black_box(sim.run(&[policy], 500)))
        });
    }
    g.finish();
}

fn bench_parallel_speedup(c: &mut Criterion) {
    // The same panel fanned out over threads: the hpc-parallel win.
    let mut g = c.benchmark_group("fig4_parallel");
    g.throughput(Throughput::Elements(8 * ITERS));
    g.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        let sim = PrefetchOnlySim {
            gen: ScenarioGen::paper(10, ProbMethod::skewy()),
            iterations: 8 * ITERS,
            seed: 1999,
            threads,
            chunks: 32,
        };
        g.bench_function(BenchmarkId::new("threads", threads), |b| {
            b.iter(|| black_box(sim.run(&[PolicyKind::SkpPaper], 0)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fig4_panels, bench_parallel_speedup);
criterion_main!(benches);
