//! Sharded-backend benchmark: simulation cost of the discrete-event
//! core as the shard count grows, and the per-placement overhead of the
//! shard map — all through the facade's `Backend::Sharded`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use speculative_prefetch::{Backend, Engine, MarkovChain, Placement, Workload};
use std::hint::black_box;

const REQUESTS: u64 = 300;
const CLIENTS: usize = 16;
const N: usize = 50;

fn workload() -> (MarkovChain, Vec<f64>) {
    let chain = MarkovChain::random(N, 4, 8, 3, 8, 3).expect("valid chain");
    let retrievals: Vec<f64> = (0..N).map(|i| 1.0 + (i % 30) as f64).collect();
    (chain, retrievals)
}

fn bench_shard_scaling(c: &mut Criterion) {
    let (chain, retrievals) = workload();
    let run = Workload::sharded(chain, REQUESTS, 3);
    let mut g = c.benchmark_group("sharded");
    g.sample_size(10);
    g.throughput(Throughput::Elements(REQUESTS * CLIENTS as u64));
    for shards in [1usize, 4, 16] {
        let mut engine = Engine::builder()
            .policy("skp-exact")
            .backend(Backend::Sharded {
                shards,
                clients: CLIENTS,
                placement: Placement::Hash,
            })
            .catalog(retrievals.clone())
            .build()
            .expect("valid session");
        g.bench_function(BenchmarkId::new("shards", shards), |b| {
            b.iter(|| black_box(engine.run(&run).expect("runs")))
        });
    }
    g.finish();
}

fn bench_placement_strategies(c: &mut Criterion) {
    let (chain, retrievals) = workload();
    let run = Workload::sharded(chain, REQUESTS, 3);
    let mut g = c.benchmark_group("sharded_placement");
    g.sample_size(10);
    g.throughput(Throughput::Elements(REQUESTS * CLIENTS as u64));
    for (label, placement) in [
        ("hash", Placement::Hash),
        ("range", Placement::Range),
        ("hot-cold", Placement::HotCold { hot_items: N / 8 }),
    ] {
        let mut engine = Engine::builder()
            .policy("skp-exact")
            .backend(Backend::Sharded {
                shards: 8,
                clients: CLIENTS,
                placement,
            })
            .catalog(retrievals.clone())
            .build()
            .expect("valid session");
        g.bench_function(BenchmarkId::new("placement", label), |b| {
            b.iter(|| black_box(engine.run(&run).expect("runs")))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_shard_scaling, bench_placement_strategies);
criterion_main!(benches);
