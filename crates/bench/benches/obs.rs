//! Observability overhead on the sharded-executor grid — the
//! acceptance bench of the obs subsystem's zero-overhead-when-off
//! contract.
//!
//! Every cell runs the identical traced workload four times: with no
//! obs configured (the baseline), and with the `none`, `memory` and
//! `sampled:64` sinks. It (a) asserts all four `RunReport`s are
//! bit-identical — observability never changes results — and (b)
//! reports each sink's wall-clock overhead over the baseline. The
//! acceptance claim (skipped under `--quick`): the `none` sink is
//! indistinguishable from no obs at all, and the `memory` sink's
//! median overhead across the grid stays within 2%.
//!
//! `--out <path>` writes the grid as a JSON snapshot — the checked-in
//! `BENCH_obs.json` at the repo root is one such run (CI's schema
//! guard re-gates the enabled overhead at 5% to absorb runner noise).

use speculative_prefetch::wire::{list, num};
use speculative_prefetch::{Engine, MarkovChain, RunReport, Workload};
use std::time::{Duration, Instant};

const N: usize = 48;

fn engine(shards: usize, clients: usize, obs: Option<&str>) -> Engine {
    let mut builder = Engine::builder()
        .policy("skp-exact")
        .backend_spec(&format!("sharded:{shards}x{clients}:hash"))
        .catalog((0..N).map(|i| 1.0 + (i % 30) as f64).collect());
    if let Some(spec) = obs {
        builder = builder.obs(spec);
    }
    builder.build().expect("valid session")
}

/// Times `samples` runs and keeps the fastest one: the minimum is the
/// noise-robust estimator on a shared host (scheduler preemption and
/// frequency shifts only ever add time, never subtract it).
fn timed(engine: &mut Engine, workload: &Workload, samples: usize) -> (RunReport, Duration) {
    let report = engine.run(workload).expect("runs"); // warm-up + result
    let mut best = Duration::MAX;
    for _ in 0..samples {
        let start = Instant::now();
        std::hint::black_box(engine.run(workload).expect("runs"));
        best = best.min(start.elapsed());
    }
    (report, best)
}

struct Cell {
    shards: usize,
    clients: usize,
    events: usize,
    off: Duration,
    none: Duration,
    memory: Duration,
    sampled: Duration,
}

impl Cell {
    /// Fractional overhead of `sink` over the no-obs baseline (0.02 =
    /// 2% slower; negative = faster, i.e. noise).
    fn overhead(&self, sink: Duration) -> f64 {
        sink.as_secs_f64() / self.off.as_secs_f64().max(1e-12) - 1.0
    }

    fn json(&self) -> String {
        format!(
            "{{\"shards\":{},\"clients\":{},\"events\":{},\"off_ms\":{},\
             \"none_ms\":{},\"memory_ms\":{},\"sampled_ms\":{},\
             \"none_overhead\":{},\"memory_overhead\":{},\"sampled_overhead\":{},\
             \"events_per_sec\":{}}}",
            self.shards,
            self.clients,
            self.events,
            num(self.off.as_secs_f64() * 1e3),
            num(self.none.as_secs_f64() * 1e3),
            num(self.memory.as_secs_f64() * 1e3),
            num(self.sampled.as_secs_f64() * 1e3),
            num(self.overhead(self.none)),
            num(self.overhead(self.memory)),
            num(self.overhead(self.sampled)),
            num(self.events as f64 / self.memory.as_secs_f64().max(1e-12)),
        )
    }
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite overheads"));
    xs[xs.len() / 2]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let (requests, samples): (u64, usize) = if quick { (150, 1) } else { (300, 9) };
    let chain = MarkovChain::random(N, N - 1, N - 1, 3, 8, 3).expect("valid chain");
    let shard_grid: &[usize] = if quick { &[1, 4] } else { &[1, 4, 8, 16] };
    let client_grid: &[usize] = if quick { &[8] } else { &[8, 32] };

    println!("observability overhead on the sharded grid (requests/client = {requests})");
    let mut cells = Vec::new();
    for &clients in client_grid {
        for &shards in shard_grid {
            // Traced throughout: the event log is the unit of work the
            // events/sec figure is denominated in, and tracing is the
            // heaviest path the sinks ride along with.
            let workload = Workload::sharded(chain.clone(), requests, 1999).traced(true);
            let (off_report, off) = timed(&mut engine(shards, clients, None), &workload, samples);
            let (none_report, none) = timed(
                &mut engine(shards, clients, Some("none")),
                &workload,
                samples,
            );
            let (memory_report, memory) = timed(
                &mut engine(shards, clients, Some("memory")),
                &workload,
                samples,
            );
            let (sampled_report, sampled) = timed(
                &mut engine(shards, clients, Some("sampled:64")),
                &workload,
                samples,
            );
            // Observability never changes results (report equality
            // covers access/section/events and excludes phases).
            for (sink, report) in [
                ("none", &none_report),
                ("memory", &memory_report),
                ("sampled:64", &sampled_report),
            ] {
                assert_eq!(
                    &off_report, report,
                    "obs '{sink}' changed results at {shards}x{clients}"
                );
            }
            let cell = Cell {
                shards,
                clients,
                events: off_report.events.len(),
                off,
                none,
                memory,
                sampled,
            };
            println!(
                "  {shards:>2} shards x {clients:>2} clients: off {:>8.3} ms  \
                 none {:>+6.2}%  memory {:>+6.2}%  sampled:64 {:>+6.2}%",
                off.as_secs_f64() * 1e3,
                cell.overhead(none) * 1e2,
                cell.overhead(memory) * 1e2,
                cell.overhead(sampled) * 1e2,
            );
            cells.push(cell);
        }
    }
    if let Some(path) = out {
        let snapshot = format!(
            "{{\"bench\":\"obs\",\"requests_per_client\":{requests},\
             \"samples\":{samples},\"quick\":{quick},\"cells\":{}}}\n",
            list(&cells, Cell::json)
        );
        std::fs::write(&path, snapshot).expect("write snapshot");
        println!("snapshot written to {path}");
    }
    let none_med = median(cells.iter().map(|c| c.overhead(c.none)).collect());
    let memory_med = median(cells.iter().map(|c| c.overhead(c.memory)).collect());
    let sampled_med = median(cells.iter().map(|c| c.overhead(c.sampled)).collect());
    println!(
        "median overhead: none {:+.2}%  memory {:+.2}%  sampled:64 {:+.2}%",
        none_med * 1e2,
        memory_med * 1e2,
        sampled_med * 1e2
    );
    // The acceptance claims, on the full grid only (`--quick` keeps the
    // equivalence assertions but the 1-sample timings are too noisy to
    // gate on).
    if !quick {
        assert!(
            none_med <= 0.02,
            "the none sink must be indistinguishable from no obs (median {:+.2}%)",
            none_med * 1e2
        );
        assert!(
            memory_med <= 0.02,
            "the memory sink exceeded its 2% overhead budget (median {:+.2}%)",
            memory_med * 1e2
        );
    }
}
