//! Workload-generator equivalence and fault-machinery overhead — the
//! acceptance bench of the adversarial-workload subsystem.
//!
//! Two claims, each asserted on every run:
//!
//! 1. **Generated workloads keep the determinism contract.** For every
//!    registered generator spec — fault injection included — the
//!    `sharded:` and `parallel:` executors produce bit-identical
//!    `RunReport`s on the same seed.
//!
//! 2. **Fault injection is free when inert.** Running the scheduler
//!    with `FaultSpec::inert()` (identity service scaling, no outage
//!    windows) produces a report bit-identical to running with no
//!    faults at all, and its median wall-clock overhead across the
//!    grid stays within 2% (the timing gate is skipped under
//!    `--quick`; the 1-sample timings are too noisy to gate on).
//!
//! `--out <path>` writes the grid as a JSON snapshot.

use distsys::{FaultSpec, Placement, ShardedSim};
use rand::rngs::SmallRng;
use speculative_prefetch::wire::{list, num};
use speculative_prefetch::{Engine, RunReport, Workload};
use std::time::{Duration, Instant};

const N: usize = 48;

/// Deterministic ring workload: next item is always `state + 1`, so a
/// next-state policy prefetches perfectly and the bench exercises the
/// steady-state scheduler path without sampling noise.
struct Ring {
    n: usize,
}
impl distsys::scheduler::ClientWorkload for Ring {
    fn viewing(&self, state: usize) -> f64 {
        2.0 + (state % 5) as f64
    }
    fn next(&self, state: usize, _rng: &mut SmallRng) -> usize {
        (state + 1) % self.n
    }
    fn n_items(&self) -> usize {
        self.n
    }
}

fn sharded_report(
    shards: usize,
    clients: usize,
    requests: u64,
    faults: Option<&FaultSpec>,
) -> distsys::ShardReport {
    let ring = Ring { n: N };
    let retrievals: Vec<f64> = (0..N).map(|i| 1.0 + (i % 7) as f64).collect();
    let sim = ShardedSim {
        workload: &ring,
        retrievals: &retrievals,
        clients,
        shards,
        placement: Placement::Hash,
        requests_per_client: requests,
        seed: 1999,
        faults,
    };
    sim.run(&mut |_c: usize, s: usize| vec![(s + 1) % N])
}

/// Times the two runs interleaved — off, inert, off, inert, … — and
/// keeps each side's fastest sample: the minimum is the noise-robust
/// estimator on a shared host, and interleaving stops slow host drift
/// (frequency shifts, neighbours) from biasing one side.
fn timed_pair<R>(
    samples: usize,
    mut off: impl FnMut() -> R,
    mut inert: impl FnMut() -> R,
) -> (R, R, Duration, Duration) {
    let (off_result, inert_result) = (off(), inert()); // warm-up + results
    let (mut best_off, mut best_inert) = (Duration::MAX, Duration::MAX);
    for _ in 0..samples {
        let start = Instant::now();
        std::hint::black_box(off());
        best_off = best_off.min(start.elapsed());
        let start = Instant::now();
        std::hint::black_box(inert());
        best_inert = best_inert.min(start.elapsed());
    }
    (off_result, inert_result, best_off, best_inert)
}

struct Cell {
    shards: usize,
    clients: usize,
    off: Duration,
    inert: Duration,
}

impl Cell {
    /// Fractional overhead of the inert fault plan over the no-faults
    /// baseline (0.02 = 2% slower; negative = noise).
    fn overhead(&self) -> f64 {
        self.inert.as_secs_f64() / self.off.as_secs_f64().max(1e-12) - 1.0
    }

    fn json(&self) -> String {
        format!(
            "{{\"shards\":{},\"clients\":{},\"off_ms\":{},\"inert_ms\":{},\
             \"inert_overhead\":{}}}",
            self.shards,
            self.clients,
            num(self.off.as_secs_f64() * 1e3),
            num(self.inert.as_secs_f64() * 1e3),
            num(self.overhead()),
        )
    }
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite overheads"));
    xs[xs.len() / 2]
}

fn generator_equivalence(requests: u64) {
    let catalog: Vec<f64> = (0..N).map(|i| 1.0 + (i % 7) as f64).collect();
    let run = |backend: &str, spec: &str| -> RunReport {
        Engine::builder()
            .policy("skp-exact")
            .backend_spec(backend)
            .catalog(catalog.clone())
            .build()
            .expect("valid session")
            .run(&Workload::generated(spec, requests, 1999).traced(true))
            .expect("runs")
    };
    for spec in [
        "flash:1.2@0.5",
        "diurnal:8x0.9",
        "churn:0.3/0.1",
        "faults:out=0@10+30;slow=1x2.5;svc=1.5",
    ] {
        let sequential = run("sharded:4x8:hash", spec);
        let parallel = run("parallel:4x8:hash:3", spec);
        assert_eq!(sequential, parallel, "{spec}: executors diverged");
        println!(
            "  {spec:<40} sharded == parallel ({} events)",
            sequential.events.len()
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let (requests, samples): (u64, usize) = if quick { (200, 1) } else { (3000, 11) };
    let shard_grid: &[usize] = if quick { &[1, 4] } else { &[1, 4, 8, 16] };
    let client_grid: &[usize] = if quick { &[8] } else { &[8, 32] };

    let eq_requests = requests.min(400);
    println!("generator equivalence across executors (requests/client = {eq_requests})");
    generator_equivalence(eq_requests);

    println!("inert fault-plan overhead on the scheduler grid");
    let inert = FaultSpec::inert();
    let mut cells = Vec::new();
    for &clients in client_grid {
        for &shards in shard_grid {
            let (off_report, inert_report, off, inert_t) = timed_pair(
                samples,
                || sharded_report(shards, clients, requests, None),
                || sharded_report(shards, clients, requests, Some(&inert)),
            );
            assert_eq!(
                off_report, inert_report,
                "an inert fault plan changed results at {shards}x{clients}"
            );
            let cell = Cell {
                shards,
                clients,
                off,
                inert: inert_t,
            };
            println!(
                "  {shards:>2} shards x {clients:>2} clients: off {:>8.3} ms  inert {:>+6.2}%",
                off.as_secs_f64() * 1e3,
                cell.overhead() * 1e2,
            );
            cells.push(cell);
        }
    }
    if let Some(path) = out {
        let snapshot = format!(
            "{{\"bench\":\"generators\",\"requests_per_client\":{requests},\
             \"samples\":{samples},\"quick\":{quick},\"cells\":{}}}\n",
            list(&cells, Cell::json)
        );
        std::fs::write(&path, snapshot).expect("write snapshot");
        println!("snapshot written to {path}");
    }
    let med = median(cells.iter().map(Cell::overhead).collect());
    println!("median inert-fault overhead: {:+.2}%", med * 1e2);
    if !quick {
        assert!(
            med <= 0.02,
            "the inert fault plan exceeded its 2% overhead budget (median {:+.2}%)",
            med * 1e2
        );
    }
}
