//! Ablation benchmarks for the design choices DESIGN.md calls out:
//! arbitration cost, sub-arbitration variants, the extension objectives,
//! and the discrete-event session replay vs the closed form.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use speculative_prefetch::{
    access_time_empty, arbitrate, run_session, solve_paper, solve_paper_candidates, CacheEntry,
    Catalog, NetworkAwarePolicy, Prefetcher, ProbMethod, Scenario, ScenarioGen, SessionConfig,
    StretchPenalisedPolicy, SubArbitration,
};
use std::hint::black_box;

fn scenarios(n: usize, count: usize) -> Vec<Scenario> {
    let gen = ScenarioGen::paper(n, ProbMethod::skewy());
    let mut rng = SmallRng::seed_from_u64(0xAB1A);
    (0..count).map(|_| gen.generate(&mut rng)).collect()
}

fn bench_arbitration(c: &mut Criterion) {
    let mut g = c.benchmark_group("arbitration");
    for &n in &[20usize, 100] {
        let batch = scenarios(n, 32);
        // Cache holds the odd items; plans come from SKP over the evens.
        let prepared: Vec<_> = batch
            .iter()
            .map(|s| {
                let candidates: Vec<bool> = (0..s.n()).map(|i| i % 2 == 0).collect();
                let plan = solve_paper_candidates(s, &candidates).plan;
                let cache: Vec<CacheEntry> = (0..s.n())
                    .filter(|i| i % 2 == 1)
                    .map(|id| CacheEntry {
                        id,
                        freq: (id % 7) as u64,
                    })
                    .collect();
                (s, plan, cache)
            })
            .collect();
        for (label, sub) in [
            ("pr", SubArbitration::None),
            ("pr_lfu", SubArbitration::Lfu),
            ("pr_ds", SubArbitration::DelaySaving),
        ] {
            g.bench_function(BenchmarkId::new(label, n), |b| {
                b.iter(|| {
                    for (s, plan, cache) in &prepared {
                        black_box(arbitrate(s, plan, cache, 0, sub));
                    }
                })
            });
        }
    }
    g.finish();
}

fn bench_extensions(c: &mut Criterion) {
    let mut g = c.benchmark_group("extension_objectives");
    let batch = scenarios(25, 64);
    g.bench_function("plain_skp", |b| {
        b.iter(|| {
            for s in &batch {
                black_box(solve_paper(s));
            }
        })
    });
    for lambda in [0.5, 2.0] {
        let pol = StretchPenalisedPolicy::new(lambda);
        g.bench_function(
            BenchmarkId::new("stretch_penalised", format!("{lambda}")),
            |b| {
                b.iter(|| {
                    for s in &batch {
                        black_box(pol.plan(s));
                    }
                })
            },
        );
    }
    for mu in [0.1, 1.0] {
        let pol = NetworkAwarePolicy::new(mu);
        g.bench_function(BenchmarkId::new("network_aware", format!("{mu}")), |b| {
            b.iter(|| {
                for s in &batch {
                    black_box(pol.plan(s));
                }
            })
        });
    }
    g.finish();
}

fn bench_formula_vs_event_replay(c: &mut Criterion) {
    // The closed-form access time against the mechanistic discrete-event
    // replay — the cost of "simulating it properly".
    let mut g = c.benchmark_group("access_time");
    let batch = scenarios(10, 64);
    let prepared: Vec<_> = batch
        .iter()
        .map(|s| {
            let plan = solve_paper(s).plan;
            let retr = Catalog::new(s.retrievals().to_vec());
            (s, plan, retr)
        })
        .collect();
    g.bench_function("closed_form", |b| {
        b.iter(|| {
            for (s, plan, _) in &prepared {
                for alpha in 0..s.n() {
                    black_box(access_time_empty(s, plan.items(), alpha));
                }
            }
        })
    });
    g.bench_function("event_replay", |b| {
        b.iter(|| {
            for (s, plan, retr) in &prepared {
                for alpha in 0..s.n() {
                    black_box(run_session(
                        retr,
                        &SessionConfig {
                            viewing: s.viewing(),
                            plan: plan.items(),
                            request: alpha,
                            cached: &[],
                        },
                    ));
                }
            }
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_arbitration,
    bench_extensions,
    bench_formula_vs_event_replay
);
criterion_main!(benches);
