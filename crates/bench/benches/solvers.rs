//! Solver microbenchmarks: the Figure-3 branch-and-bound, the corrected
//! canonical solver, the 0/1-knapsack baseline solvers, the Eq. 7 bound
//! and the exhaustive oracle, across problem sizes and workload skews.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use montecarlo::probgen::ProbMethod;
use montecarlo::scenario_gen::ScenarioGen;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use skp_core::kp::{greedy_by_density, solve_kp, solve_kp_dp};
use skp_core::skp::{
    linear_relaxation, solve_exact, solve_global, solve_optimal, solve_paper, upper_bound,
};
use skp_core::Scenario;
use std::hint::black_box;

fn scenarios(n: usize, method: ProbMethod, count: usize) -> Vec<Scenario> {
    let gen = ScenarioGen::paper(n, method);
    let mut rng = SmallRng::seed_from_u64(0xBE7C);
    (0..count).map(|_| gen.generate(&mut rng)).collect()
}

fn bench_skp_solvers(c: &mut Criterion) {
    let mut g = c.benchmark_group("skp_solvers");
    for &n in &[10usize, 25, 50, 100] {
        let batch = scenarios(n, ProbMethod::skewy(), 64);
        g.bench_with_input(
            BenchmarkId::new("figure3_verbatim", n),
            &batch,
            |b, batch| {
                b.iter(|| {
                    for s in batch {
                        black_box(solve_paper(s));
                    }
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("corrected_canonical", n),
            &batch,
            |b, batch| {
                b.iter(|| {
                    for s in batch {
                        black_box(solve_exact(s));
                    }
                })
            },
        );
        g.bench_with_input(BenchmarkId::new("upper_bound", n), &batch, |b, batch| {
            b.iter(|| {
                for s in batch {
                    black_box(upper_bound(s));
                }
            })
        });
        g.bench_with_input(
            BenchmarkId::new("linear_relaxation", n),
            &batch,
            |b, batch| {
                b.iter(|| {
                    for s in batch {
                        black_box(linear_relaxation(s));
                    }
                })
            },
        );
    }
    // The oracle only scales to small n.
    for &n in &[10usize, 16] {
        let batch = scenarios(n, ProbMethod::skewy(), 8);
        g.bench_with_input(
            BenchmarkId::new("exhaustive_oracle", n),
            &batch,
            |b, batch| {
                b.iter(|| {
                    for s in batch {
                        black_box(solve_optimal(s));
                    }
                })
            },
        );
    }
    // The pseudo-polynomial global DP: exact like the oracle, but scales.
    for &n in &[10usize, 16, 40] {
        let batch = scenarios(n, ProbMethod::skewy(), 8);
        g.bench_with_input(BenchmarkId::new("global_dp", n), &batch, |b, batch| {
            b.iter(|| {
                for s in batch {
                    black_box(solve_global(s).expect("integral instance"));
                }
            })
        });
    }
    g.finish();
}

fn bench_kp_solvers(c: &mut Criterion) {
    let mut g = c.benchmark_group("kp_solvers");
    for &n in &[10usize, 25, 100] {
        let batch = scenarios(n, ProbMethod::flat(), 64);
        g.bench_with_input(
            BenchmarkId::new("branch_and_bound", n),
            &batch,
            |b, batch| {
                b.iter(|| {
                    for s in batch {
                        black_box(solve_kp(s));
                    }
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("dynamic_program", n),
            &batch,
            |b, batch| {
                b.iter(|| {
                    for s in batch {
                        black_box(solve_kp_dp(s));
                    }
                })
            },
        );
        g.bench_with_input(BenchmarkId::new("greedy", n), &batch, |b, batch| {
            b.iter(|| {
                for s in batch {
                    black_box(greedy_by_density(s));
                }
            })
        });
    }
    g.finish();
}

fn bench_workload_skew(c: &mut Criterion) {
    // Search effort depends on the probability shape: flat workloads make
    // the bound looser and the tree deeper.
    let mut g = c.benchmark_group("skp_by_skew");
    for (label, method) in [
        ("skewy", ProbMethod::skewy()),
        ("flat", ProbMethod::flat()),
        ("zipf", ProbMethod::Zipf { s: 1.0 }),
    ] {
        let batch = scenarios(25, method, 64);
        g.bench_function(BenchmarkId::new("corrected_canonical", label), |b| {
            b.iter(|| {
                for s in &batch {
                    black_box(solve_exact(s));
                }
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_skp_solvers,
    bench_kp_solvers,
    bench_workload_skew
);
criterion_main!(benches);
