//! Solver and registry microbenchmarks, driven through the facade.
//!
//! The headline groups sweep the **policy and predictor registries by
//! spec name** — exactly how the engine composes them — so adding a
//! registry entry automatically adds a benchmark. Low-level solver
//! comparisons (branch-and-bound vs DP vs greedy, the Eq. 7 bound, the
//! exhaustive oracle) ride along through the facade's root re-exports.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use speculative_prefetch::{
    build_policy, build_predictor, greedy_by_density, linear_relaxation, policy_specs,
    predictor_specs, solve_kp, solve_kp_dp, solve_optimal, upper_bound, ProbMethod, Scenario,
    ScenarioGen,
};
use std::hint::black_box;

fn scenarios(n: usize, method: ProbMethod, count: usize) -> Vec<Scenario> {
    let gen = ScenarioGen::paper(n, method);
    let mut rng = SmallRng::seed_from_u64(0xBE7C);
    (0..count).map(|_| gen.generate(&mut rng)).collect()
}

/// Every registered policy, planned by spec name across problem sizes.
fn bench_policy_registry(c: &mut Criterion) {
    let mut g = c.benchmark_group("policy_registry");
    for &n in &[10usize, 25, 50] {
        let batch = scenarios(n, ProbMethod::skewy(), 64);
        for spec in policy_specs() {
            // Oracles plan per realised request; nothing to bench here.
            let policy = build_policy(spec.name).expect("registry entry builds");
            if policy.is_oracle() {
                continue;
            }
            // The exhaustive oracle solver only scales to small n.
            if spec.name == "skp-optimal" && n > 16 {
                continue;
            }
            g.bench_with_input(BenchmarkId::new(spec.name, n), &batch, |b, batch| {
                b.iter(|| {
                    for s in batch {
                        black_box(policy.plan(s));
                    }
                })
            });
        }
    }
    g.finish();
}

/// Every registered predictor: observe a stream, then forecast.
fn bench_predictor_registry(c: &mut Criterion) {
    const N_ITEMS: usize = 50;
    let mut g = c.benchmark_group("predictor_registry");
    for spec in predictor_specs() {
        let mut p = build_predictor(spec.name, N_ITEMS).expect("registry entry builds");
        for i in 0..2_000usize {
            p.observe((i * 7 + i % 13) % N_ITEMS);
        }
        g.bench_function(BenchmarkId::new("predict", spec.name), |b| {
            b.iter(|| {
                for current in 0..N_ITEMS {
                    black_box(p.predict(current));
                }
            })
        });
    }
    g.finish();
}

/// Low-level solver shoot-out: exact search vs its bounds and the
/// knapsack baselines, across sizes.
fn bench_solver_internals(c: &mut Criterion) {
    let mut g = c.benchmark_group("solver_internals");
    for &n in &[10usize, 25, 100] {
        let batch = scenarios(n, ProbMethod::flat(), 64);
        g.bench_with_input(
            BenchmarkId::new("kp_branch_and_bound", n),
            &batch,
            |b, batch| {
                b.iter(|| {
                    for s in batch {
                        black_box(solve_kp(s));
                    }
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("kp_dynamic_program", n),
            &batch,
            |b, batch| {
                b.iter(|| {
                    for s in batch {
                        black_box(solve_kp_dp(s));
                    }
                })
            },
        );
        g.bench_with_input(BenchmarkId::new("kp_greedy", n), &batch, |b, batch| {
            b.iter(|| {
                for s in batch {
                    black_box(greedy_by_density(s));
                }
            })
        });
        g.bench_with_input(BenchmarkId::new("upper_bound", n), &batch, |b, batch| {
            b.iter(|| {
                for s in batch {
                    black_box(upper_bound(s));
                }
            })
        });
        g.bench_with_input(
            BenchmarkId::new("linear_relaxation", n),
            &batch,
            |b, batch| {
                b.iter(|| {
                    for s in batch {
                        black_box(linear_relaxation(s));
                    }
                })
            },
        );
    }
    // The oracle only scales to small n.
    for &n in &[10usize, 16] {
        let batch = scenarios(n, ProbMethod::skewy(), 8);
        g.bench_with_input(
            BenchmarkId::new("exhaustive_oracle", n),
            &batch,
            |b, batch| {
                b.iter(|| {
                    for s in batch {
                        black_box(solve_optimal(s));
                    }
                })
            },
        );
    }
    g.finish();
}

/// Search effort depends on the probability shape: flat workloads make
/// the bound looser and the tree deeper.
fn bench_workload_skew(c: &mut Criterion) {
    let mut g = c.benchmark_group("skp_by_skew");
    let exact = build_policy("skp-exact").expect("registered");
    for (label, method) in [
        ("skewy", ProbMethod::skewy()),
        ("flat", ProbMethod::flat()),
        ("zipf", ProbMethod::Zipf { s: 1.0 }),
    ] {
        let batch = scenarios(25, method, 64);
        g.bench_function(BenchmarkId::new("skp-exact", label), |b| {
            b.iter(|| {
                for s in &batch {
                    black_box(exact.plan(s));
                }
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_policy_registry,
    bench_predictor_registry,
    bench_solver_internals,
    bench_workload_skew
);
criterion_main!(benches);
