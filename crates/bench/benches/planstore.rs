//! Cold vs warm population runs across the plan-store tiers — the
//! wall-clock acceptance bench of the plan-store subsystem.
//!
//! The workload is solve-dominated: a 96-state chain with heavy
//! fan-out under `skp-exact`, so per-state plan solving dwarfs the
//! event simulation. Every cell runs the identical workload twice per
//! tier spec — **cold** (fresh engine, empty store) and **warm**
//! (fresh engine, sharing the store a previous run populated) —
//! asserts the two `RunReport`s are bit-identical including the event
//! log, and reports both wall-clock times and the warm speed-up. `--quick` shrinks the sweep for CI while keeping the
//! equivalence assertion; `--out <path>` writes the sweep as a JSON
//! snapshot — the checked-in `BENCH_planstore.json` at the repo root
//! is one such run.
//!
//! All `file:` state lives under one scratch directory that is removed
//! before the bench exits, so repeated runs (and CI) never inherit a
//! warm store by accident.

use speculative_prefetch::wire::{esc, list, num};
use speculative_prefetch::{build_plan_store, Engine, MarkovChain, PlanStore, RunReport, Workload};
use std::sync::Arc;
use std::time::{Duration, Instant};

const N: usize = 96;
const CLIENTS: usize = 4;

fn engine(store: &Arc<dyn PlanStore>) -> Engine {
    Engine::builder()
        .policy("skp-exact")
        .backend_spec(&format!("sharded:2x{CLIENTS}:hash"))
        .catalog((0..N).map(|i| 1.0 + (i % 17) as f64).collect())
        .plan_store_instance(Arc::clone(store))
        .build()
        .expect("valid session")
}

/// One run on a *fresh* engine sharing `store` — cross-run reuse goes
/// through the store alone, never through engine-private state.
fn run_once(store: &Arc<dyn PlanStore>, workload: &Workload) -> (RunReport, Duration) {
    let mut engine = engine(store);
    let start = Instant::now();
    let report = engine.run(workload).expect("runs");
    (report, start.elapsed())
}

struct Cell {
    spec: String,
    cold: Duration,
    warm: Duration,
    warm_hits: u64,
}

impl Cell {
    fn speedup(&self) -> f64 {
        self.cold.as_secs_f64() / self.warm.as_secs_f64().max(1e-12)
    }

    fn json(&self) -> String {
        format!(
            "{{\"store\":\"{}\",\"cold_ms\":{},\"warm_ms\":{},\"speedup\":{},\"warm_hits\":{}}}",
            esc(&self.spec),
            num(self.cold.as_secs_f64() * 1e3),
            num(self.warm.as_secs_f64() * 1e3),
            num(self.speedup()),
            self.warm_hits,
        )
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let (requests, samples): (u64, usize) = if quick { (8, 1) } else { (16, 5) };

    let root = std::env::temp_dir().join(format!("skp-plan-store-bench-{}", std::process::id()));
    let specs: Vec<String> = vec![
        "none".to_string(),
        "hot:256".to_string(),
        "memory:8x1024".to_string(),
        format!("file:{}", root.join("file").display()),
        format!("tiered:hot:256,file:{}", root.join("tiered").display()),
    ];

    // Solve-dominated: heavy fan-out makes each state's skp-exact solve
    // expensive relative to simulating a handful of requests.
    let chain = MarkovChain::random(N, 20, 28, 3, 8, 11).expect("valid chain");
    let workload = Workload::sharded(chain.clone(), requests, 1999);
    let traced = Workload::sharded(chain, requests, 1999).traced(true);

    println!(
        "cold vs warm population runs ({N} states, {CLIENTS} clients x {requests} requests, \
         skp-exact)"
    );
    let mut cells = Vec::new();
    for spec in &specs {
        // A wiped scratch dir makes every cold sample genuinely cold
        // for the persistent tiers; in-memory tiers get a fresh store
        // per sample anyway.
        let wipe = || {
            let _ = std::fs::remove_dir_all(&root);
        };

        // The determinism gate first: warm output is bit-identical to
        // cold, event log included.
        wipe();
        let gate = build_plan_store(spec).expect("valid spec");
        let (cold_report, _) = run_once(&gate, &traced);
        let (warm_report, _) = run_once(&gate, &traced);
        assert!(!cold_report.events.is_empty(), "{spec}: traced run");
        assert_eq!(
            cold_report, warm_report,
            "{spec}: warm run diverged from cold"
        );

        let mut cold = Duration::MAX;
        for _ in 0..samples {
            wipe();
            let store = build_plan_store(spec).expect("valid spec");
            cold = cold.min(run_once(&store, &workload).1);
        }

        wipe();
        let store = build_plan_store(spec).expect("valid spec");
        let _ = run_once(&store, &workload); // populate
        let mut warm = Duration::MAX;
        let mut warm_hits = 0;
        for _ in 0..samples {
            // Fresh engine, shared store: the cross-run reuse shape.
            let (report, t) = run_once(&store, &workload);
            warm = warm.min(t);
            warm_hits = report.plan_store.hits;
        }

        let cell = Cell {
            spec: spec.clone(),
            cold,
            warm,
            warm_hits,
        };
        println!(
            "  {:<28} cold {:>8.3} ms  warm {:>8.3} ms  ({:.2}x, {} warm hits)",
            cell.spec,
            cold.as_secs_f64() * 1e3,
            warm.as_secs_f64() * 1e3,
            cell.speedup(),
            cell.warm_hits,
        );
        cells.push(cell);
    }
    let _ = std::fs::remove_dir_all(&root);
    assert!(!root.exists(), "scratch dir must not leak");

    if let Some(path) = out {
        let snapshot = format!(
            "{{\"bench\":\"planstore\",\"states\":{N},\"clients\":{CLIENTS},\
             \"requests_per_client\":{requests},\"samples\":{samples},\"quick\":{quick},\
             \"cells\":{}}}\n",
            list(&cells, Cell::json)
        );
        std::fs::write(&path, snapshot).expect("write snapshot");
        println!("snapshot written to {path}");
    }

    // The acceptance claim: on solve-dominated cells every retaining
    // tier serves the warm repeat at least 2x faster than cold. The
    // `none` cell is the honest baseline (speed-up ~1) and is exempt.
    let ok = cells
        .iter()
        .filter(|c| c.spec != "none")
        .all(|c| c.speedup() >= 2.0);
    println!(
        "warm repeat >= 2x faster than cold on every retaining tier: {}",
        if ok { "yes" } else { "NO" }
    );
    if !quick {
        assert!(ok, "a retaining tier failed the 2x warm-speedup gate");
    }
}
