//! Figure-5 harness benchmark: the four-policy (plus corrected-SKP)
//! comparison at `n = 10` and `n = 25`, skewy and flat.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use speculative_prefetch::{PolicyKind, PrefetchOnlySim, ProbMethod, ScenarioGen};
use std::hint::black_box;

const ITERS: u64 = 1_000;
const POLICIES: [PolicyKind; 5] = [
    PolicyKind::NoPrefetch,
    PolicyKind::Kp,
    PolicyKind::SkpPaper,
    PolicyKind::SkpExact,
    PolicyKind::Perfect,
];

fn bench_fig5_panels(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_policies");
    g.throughput(Throughput::Elements(ITERS * POLICIES.len() as u64));
    g.sample_size(10);

    let panels = [
        ("a_n10_skewy", 10usize, ProbMethod::skewy()),
        ("b_n10_flat", 10, ProbMethod::flat()),
        ("c_n25_skewy", 25, ProbMethod::skewy()),
        ("d_n25_flat", 25, ProbMethod::flat()),
    ];
    for (label, n, method) in panels {
        let sim = PrefetchOnlySim {
            gen: ScenarioGen::paper(n, method),
            iterations: ITERS,
            seed: 1999,
            threads: 1,
            chunks: 1,
        };
        g.bench_function(BenchmarkId::new("panel", label), |b| {
            b.iter(|| black_box(sim.run(&POLICIES, 0)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fig5_panels);
criterion_main!(benches);
