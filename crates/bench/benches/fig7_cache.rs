//! Figure-7 harness benchmark: one sweep point of the prefetch–cache
//! simulation (Markov source + SKP planning + Figure-6 arbitration) per
//! policy, plus the request-cycle cost as a function of cache size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use speculative_prefetch::{PrefetchCacheConfig, PrefetchCacheSim};
use std::hint::black_box;

const REQUESTS: u64 = 1_000;

fn bench_fig7_policies(c: &mut Criterion) {
    let sim = PrefetchCacheSim::paper(REQUESTS, 1999);
    let (chain, catalog) = sim.workload();
    let policies = PrefetchCacheConfig::figure7_policies(30);

    let mut g = c.benchmark_group("fig7_policies");
    g.throughput(Throughput::Elements(REQUESTS));
    g.sample_size(10);
    for (name, cfg) in policies {
        g.bench_function(BenchmarkId::new("policy", name), |b| {
            b.iter(|| black_box(sim.run_point(&chain, &catalog, name, cfg, 7)))
        });
    }
    g.finish();
}

fn bench_fig7_capacity_scaling(c: &mut Criterion) {
    let sim = PrefetchCacheSim::paper(REQUESTS, 1999);
    let (chain, catalog) = sim.workload();

    let mut g = c.benchmark_group("fig7_capacity");
    g.throughput(Throughput::Elements(REQUESTS));
    g.sample_size(10);
    for capacity in [5usize, 25, 50, 100] {
        let (name, cfg) = PrefetchCacheConfig::figure7_policies(capacity)[4];
        g.bench_function(BenchmarkId::new("skp_pr_ds_cap", capacity), |b| {
            b.iter(|| black_box(sim.run_point(&chain, &catalog, name, cfg, 7)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fig7_policies, bench_fig7_capacity_scaling);
criterion_main!(benches);
