//! Daemon request-latency bench: an in-process `skp-serve` under a
//! stream of `POST /run` wire runs, reported as the same `AccessStats`
//! percentile block the simulations use — client-observed round-trip
//! latency next to the daemon's own `/stats` view.
//!
//! `--quick` shrinks the request count for CI; `--out <path>` writes
//! the snapshot (the checked-in `BENCH_serve.json` at the repo root is
//! one such run).

use skp_serve::{ServeConfig, Server};
use speculative_prefetch::wire::render_access;
use speculative_prefetch::{http_request, AccessStats, MarkovChain, WireRun};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let iterations: usize = if quick { 20 } else { 100 };

    let server = Server::bind("127.0.0.1:0", ServeConfig::default()).expect("bind daemon");
    let addr = server.local_addr().to_string();
    let handle = server.spawn().expect("spawn daemon");

    let chain = MarkovChain::random(24, 2, 4, 5, 20, 7).expect("valid chain");
    let retrievals: Vec<f64> = (0..24).map(|i| 1.0 + (i % 8) as f64).collect();
    let body = WireRun::new(
        "sharded",
        "parallel:4x16:hash:0",
        "skp-exact",
        &chain,
        &retrievals,
        50,
        1999,
        false,
    )
    .render();

    println!("daemon round-trip latency over {iterations} POST /run requests");
    let mut samples = Vec::with_capacity(iterations);
    for _ in 0..iterations {
        let start = Instant::now();
        let resp = http_request(&addr, "POST", "/run", Some(&body)).expect("daemon reachable");
        assert_eq!(resp.status, 200, "{}", resp.body);
        samples.push(start.elapsed().as_secs_f64() * 1e3);
    }
    let round_trip = AccessStats::from_samples(&mut samples);
    println!(
        "  client-observed: mean {:.3} ms  p50 {:.3} ms  p99 {:.3} ms",
        round_trip.mean, round_trip.p50, round_trip.p99
    );

    let stats = http_request(&addr, "GET", "/stats", None).expect("GET /stats");
    assert_eq!(stats.status, 200);
    println!("  daemon /stats: {}", stats.body);

    if let Some(path) = out {
        let snapshot = format!(
            "{{\"bench\":\"serve\",\"iterations\":{iterations},\"quick\":{quick},\
             \"round_trip_ms\":{},\"daemon_stats\":{}}}\n",
            render_access(&round_trip),
            stats.body
        );
        std::fs::write(&path, snapshot).expect("write snapshot");
        println!("snapshot written to {path}");
    }

    handle.shutdown().expect("clean shutdown");
}
