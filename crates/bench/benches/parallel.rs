//! Sequential vs parallel sharded executor across the clients × shards
//! grid — the wall-clock acceptance bench of the parallel subsystem.
//!
//! Every cell runs the identical workload on `sharded:SxC:hash` and
//! `parallel:SxC:hash:0` and (a) asserts the two `RunReport`s are
//! bit-identical — the equivalence path CI exercises with `--quick` —
//! and (b) reports both wall-clock times and the speed-up. The custom
//! `main` (no criterion harness) is what lets `--quick` shrink the grid
//! for CI while keeping the equivalence assertion.
//!
//! `--out <path>` additionally writes the grid as a JSON snapshot
//! (events/sec and seq-vs-par speed-up per cell) — the checked-in
//! `BENCH_parallel.json` at the repo root is one such run.

use speculative_prefetch::wire::{list, num};
use speculative_prefetch::{Engine, MarkovChain, RunReport, Workload};
use std::time::{Duration, Instant};

const N: usize = 48;

fn engine(backend_spec: &str) -> Engine {
    Engine::builder()
        .policy("skp-exact")
        .backend_spec(backend_spec)
        .catalog((0..N).map(|i| 1.0 + (i % 30) as f64).collect())
        .build()
        .expect("valid session")
}

/// Times `samples` runs and keeps the fastest one: the minimum is the
/// noise-robust estimator on a shared host (scheduler preemption and
/// frequency shifts only ever add time, never subtract it).
fn timed(engine: &mut Engine, workload: &Workload, samples: usize) -> (RunReport, Duration) {
    let report = engine.run(workload).expect("runs"); // warm-up + result
    let mut best = Duration::MAX;
    for _ in 0..samples {
        let start = Instant::now();
        std::hint::black_box(engine.run(workload).expect("runs"));
        best = best.min(start.elapsed());
    }
    (report, best)
}

struct Cell {
    shards: usize,
    clients: usize,
    events: usize,
    seq: Duration,
    one: Duration,
    par: Duration,
}

impl Cell {
    fn speedup(&self) -> f64 {
        self.seq.as_secs_f64() / self.par.as_secs_f64().max(1e-12)
    }

    fn json(&self) -> String {
        format!(
            "{{\"shards\":{},\"clients\":{},\"events\":{},\"sequential_ms\":{},\
             \"memoised_1w_ms\":{},\"parallel_ms\":{},\"speedup\":{},\
             \"threading_speedup\":{},\"events_per_sec\":{}}}",
            self.shards,
            self.clients,
            self.events,
            num(self.seq.as_secs_f64() * 1e3),
            num(self.one.as_secs_f64() * 1e3),
            num(self.par.as_secs_f64() * 1e3),
            num(self.speedup()),
            num(self.one.as_secs_f64() / self.par.as_secs_f64().max(1e-12)),
            num(self.events as f64 / self.par.as_secs_f64().max(1e-12)),
        )
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let (requests, samples): (u64, usize) = if quick { (150, 1) } else { (300, 9) };
    // Uniform workload: full fan-out, uniform-ish retrievals (the
    // acceptance grid of the parallel subsystem).
    let chain = MarkovChain::random(N, N - 1, N - 1, 3, 8, 3).expect("valid chain");
    let shard_grid: &[usize] = if quick { &[1, 4] } else { &[1, 4, 8, 16] };
    let client_grid: &[usize] = if quick { &[8] } else { &[8, 32] };

    println!("sequential-vs-parallel sharded executor (requests/client = {requests})");
    let mut at_4_or_more = Vec::new();
    let mut cells = Vec::new();
    for &clients in client_grid {
        for &shards in shard_grid {
            let workload = Workload::sharded(chain.clone(), requests, 1999);
            // Event throughput denominator: the mechanistic event count
            // of the cell's workload (identical across backends by the
            // equivalence contract, so one traced run suffices).
            let events = engine(&format!("sharded:{shards}x{clients}:hash"))
                .run(&Workload::sharded(chain.clone(), requests, 1999).traced(true))
                .expect("traced run")
                .events
                .len();
            let (seq_report, seq_time) = timed(
                &mut engine(&format!("sharded:{shards}x{clients}:hash")),
                &workload,
                samples,
            );
            // Single-worker parallel spec: plan memoisation without
            // threading — the middle column that separates the two
            // contributions so a threading regression is visible.
            let (one_report, one_time) = timed(
                &mut engine(&format!("parallel:{shards}x{clients}:hash:1")),
                &workload,
                samples,
            );
            let (par_report, par_time) = timed(
                &mut engine(&format!("parallel:{shards}x{clients}:hash:0")),
                &workload,
                samples,
            );
            // The equivalence path: identical reports, always.
            assert_eq!(
                seq_report, par_report,
                "parallel diverged from sequential at {shards}x{clients}"
            );
            assert_eq!(
                seq_report, one_report,
                "single-worker parallel diverged from sequential at {shards}x{clients}"
            );
            let speedup = seq_time.as_secs_f64() / par_time.as_secs_f64().max(1e-12);
            let threading = one_time.as_secs_f64() / par_time.as_secs_f64().max(1e-12);
            println!(
                "  {shards:>2} shards x {clients:>2} clients: sequential {:>8.3} ms  \
                 memoised-1w {:>8.3} ms  parallel {:>8.3} ms  \
                 ({speedup:.2}x total, {threading:.2}x from threads)",
                seq_time.as_secs_f64() * 1e3,
                one_time.as_secs_f64() * 1e3,
                par_time.as_secs_f64() * 1e3,
            );
            if shards >= 4 {
                at_4_or_more.push((shards, clients, one_time, par_time));
            }
            cells.push(Cell {
                shards,
                clients,
                events,
                seq: seq_time,
                one: one_time,
                par: par_time,
            });
        }
    }
    if let Some(path) = out {
        let snapshot = format!(
            "{{\"bench\":\"parallel\",\"requests_per_client\":{requests},\
             \"samples\":{samples},\"quick\":{quick},\"cells\":{}}}\n",
            list(&cells, Cell::json)
        );
        std::fs::write(&path, snapshot).expect("write snapshot");
        println!("snapshot written to {path}");
    }
    // The acceptance claim: the parallel executor never costs more than
    // a small factor over the memoised single-worker column at >= 4
    // shards. (The historical `parallel <= sequential` claim compared a
    // non-memoised sequential baseline against the parallel path's plan
    // memoisation; now that the sequential executor memoises plans too
    // — and on a single-CPU host the parallel spec falls back to one
    // worker — the honest invariant is "threading is not catastrophic",
    // with report bit-equality asserted above carrying correctness.)
    let ok = at_4_or_more
        .iter()
        .all(|&(_, _, one, par)| par <= one * 3 + Duration::from_millis(1));
    println!(
        "parallel within 3x of memoised single-worker at >= 4 shards: {}",
        if ok { "yes" } else { "NO" }
    );
    if !quick {
        assert!(
            ok,
            "parallel executor catastrophically slower than its own single-worker path"
        );
    }
}
