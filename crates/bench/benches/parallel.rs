//! Sequential vs parallel sharded executor across the clients × shards
//! grid — the wall-clock acceptance bench of the parallel subsystem.
//!
//! Every cell runs the identical workload on `sharded:SxC:hash` and
//! `parallel:SxC:hash:0` and (a) asserts the two `RunReport`s are
//! bit-identical — the equivalence path CI exercises with `--quick` —
//! and (b) reports both wall-clock times and the speed-up. The custom
//! `main` (no criterion harness) is what lets `--quick` shrink the grid
//! for CI while keeping the equivalence assertion.

use speculative_prefetch::{Engine, MarkovChain, RunReport, Workload};
use std::time::{Duration, Instant};

const N: usize = 48;

fn engine(backend_spec: &str) -> Engine {
    Engine::builder()
        .policy("skp-exact")
        .backend_spec(backend_spec)
        .catalog((0..N).map(|i| 1.0 + (i % 30) as f64).collect())
        .build()
        .expect("valid session")
}

fn timed(engine: &mut Engine, workload: &Workload, samples: usize) -> (RunReport, Duration) {
    let report = engine.run(workload).expect("runs"); // warm-up + result
    let start = Instant::now();
    for _ in 0..samples {
        std::hint::black_box(engine.run(workload).expect("runs"));
    }
    (report, start.elapsed() / samples as u32)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (requests, samples): (u64, usize) = if quick { (150, 1) } else { (300, 3) };
    // Uniform workload: full fan-out, uniform-ish retrievals (the
    // acceptance grid of the parallel subsystem).
    let chain = MarkovChain::random(N, N - 1, N - 1, 3, 8, 3).expect("valid chain");
    let shard_grid: &[usize] = if quick { &[1, 4] } else { &[1, 4, 8, 16] };
    let client_grid: &[usize] = if quick { &[8] } else { &[8, 32] };

    println!("sequential-vs-parallel sharded executor (requests/client = {requests})");
    let mut at_4_or_more = Vec::new();
    for &clients in client_grid {
        for &shards in shard_grid {
            let workload = Workload::sharded(chain.clone(), requests, 1999);
            let (seq_report, seq_time) = timed(
                &mut engine(&format!("sharded:{shards}x{clients}:hash")),
                &workload,
                samples,
            );
            // Single-worker parallel spec: plan memoisation without
            // threading — the middle column that separates the two
            // contributions so a threading regression is visible.
            let (one_report, one_time) = timed(
                &mut engine(&format!("parallel:{shards}x{clients}:hash:1")),
                &workload,
                samples,
            );
            let (par_report, par_time) = timed(
                &mut engine(&format!("parallel:{shards}x{clients}:hash:0")),
                &workload,
                samples,
            );
            // The equivalence path: identical reports, always.
            assert_eq!(
                seq_report, par_report,
                "parallel diverged from sequential at {shards}x{clients}"
            );
            assert_eq!(
                seq_report, one_report,
                "single-worker parallel diverged from sequential at {shards}x{clients}"
            );
            let speedup = seq_time.as_secs_f64() / par_time.as_secs_f64().max(1e-12);
            let threading = one_time.as_secs_f64() / par_time.as_secs_f64().max(1e-12);
            println!(
                "  {shards:>2} shards x {clients:>2} clients: sequential {:>8.3} ms  \
                 memoised-1w {:>8.3} ms  parallel {:>8.3} ms  \
                 ({speedup:.2}x total, {threading:.2}x from threads)",
                seq_time.as_secs_f64() * 1e3,
                one_time.as_secs_f64() * 1e3,
                par_time.as_secs_f64() * 1e3,
            );
            if shards >= 4 {
                at_4_or_more.push((shards, clients, seq_time, par_time));
            }
        }
    }
    // The acceptance claim: at >= 4 shards the parallel executor is no
    // slower than the sequential one on the uniform workload. Reported
    // (and asserted outside --quick, where timings are stable enough).
    let ok = at_4_or_more
        .iter()
        .all(|&(_, _, seq, par)| par <= seq + Duration::from_millis(1));
    println!(
        "parallel <= sequential at >= 4 shards: {}",
        if ok { "yes" } else { "NO" }
    );
    if !quick {
        assert!(
            ok,
            "parallel executor slower than sequential at >= 4 shards"
        );
    }
}
