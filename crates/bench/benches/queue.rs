//! Raw event-queue throughput: heap vs calendar.
//!
//! The classic *hold* model: pre-seed the queue with `hold` pending
//! events, then repeatedly pop one and schedule its replacement at
//! `now + delay`, with delays drawn from several distributions —
//! quantised (the simulation regime the calendar queue is built for),
//! irregular fractional gaps, zero-gap ties, and a bimodal mix with
//! occasional far-future jumps that exercises the overflow lane.
//!
//! Both implementations are driven through the identical schedule/pop
//! sequence (same deterministic delay stream), so the throughput ratio
//! is a pure implementation comparison. `--quick` shrinks the iteration
//! count for CI; `--out <path>` writes a JSON snapshot — the checked-in
//! `BENCH_queue.json` at the repo root is one such run.

use distsys::engine::{EventQueue, EventQueueKind};
use speculative_prefetch::wire::{list, num};
use std::time::Instant;

/// Deterministic xorshift64* stream so both queue kinds replay the
/// identical delay sequence.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

/// One delay distribution of the hold model.
struct Dist {
    name: &'static str,
    sample: fn(&mut Rng) -> f64,
}

const DISTS: &[Dist] = &[
    Dist {
        // The simulation regime: viewing/retrieval delays from a small
        // integer set.
        name: "quantised",
        sample: |r| (1 + r.next() % 30) as f64,
    },
    Dist {
        // Irregular fractional gaps with no common quantum.
        name: "irregular",
        sample: |r| (r.next() % 10_000) as f64 * 1e-3 + 1e-4,
    },
    Dist {
        // Heavy ties: many zero delays between real steps.
        name: "zero-heavy",
        sample: |r| if r.next() % 4 == 0 { 1.0 } else { 0.0 },
    },
    Dist {
        // Mostly near-future with occasional far jumps — the overflow
        // lane's regime.
        name: "bimodal-far",
        sample: |r| {
            if r.next() % 64 == 0 {
                1e6
            } else {
                (1 + r.next() % 8) as f64
            }
        },
    },
];

/// Runs `ops` pop+schedule rounds on a queue pre-seeded with `hold`
/// events; returns elapsed seconds and a checksum (so results cannot be
/// optimised away and both kinds can be asserted identical).
fn hold(kind: EventQueueKind, dist: &Dist, hold: usize, ops: usize) -> (f64, f64) {
    let mut rng = Rng(0x9E37_79B9_7F4A_7C15);
    let mut q: EventQueue<u32> = EventQueue::with_kind(kind);
    for i in 0..hold {
        q.schedule((dist.sample)(&mut rng), i as u32);
    }
    let mut checksum = 0.0;
    let start = Instant::now();
    for i in 0..ops {
        let (at, _) = q.pop().expect("queue holds events");
        checksum += at;
        q.schedule(at + (dist.sample)(&mut rng), i as u32);
    }
    (start.elapsed().as_secs_f64(), checksum)
}

struct Row {
    dist: &'static str,
    hold: usize,
    heap_mops: f64,
    calendar_mops: f64,
}

impl Row {
    fn json(&self) -> String {
        format!(
            "{{\"dist\":\"{}\",\"hold\":{},\"heap_mops\":{},\"calendar_mops\":{},\
             \"calendar_speedup\":{}}}",
            self.dist,
            self.hold,
            num(self.heap_mops),
            num(self.calendar_mops),
            num(self.calendar_mops / self.heap_mops.max(1e-12)),
        )
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let ops: usize = if quick { 200_000 } else { 2_000_000 };

    println!("event-queue hold throughput, {ops} pop+schedule ops (million ops/sec)");
    let mut rows = Vec::new();
    for dist in DISTS {
        for &h in &[64usize, 4096] {
            // Warm-up pass, then one measured pass per kind. The
            // checksums double as an order-equivalence assertion.
            hold(EventQueueKind::Heap, dist, h, ops / 10);
            let (heap_s, heap_sum) = hold(EventQueueKind::Heap, dist, h, ops);
            hold(EventQueueKind::Calendar, dist, h, ops / 10);
            let (cal_s, cal_sum) = hold(EventQueueKind::Calendar, dist, h, ops);
            assert_eq!(
                heap_sum.to_bits(),
                cal_sum.to_bits(),
                "{}: calendar popped a different event sequence",
                dist.name
            );
            let row = Row {
                dist: dist.name,
                hold: h,
                heap_mops: ops as f64 / heap_s / 1e6,
                calendar_mops: ops as f64 / cal_s / 1e6,
            };
            println!(
                "  {:>11} hold {:>4}: heap {:>7.2}  calendar {:>7.2}  ({:.2}x)",
                row.dist,
                row.hold,
                row.heap_mops,
                row.calendar_mops,
                row.calendar_mops / row.heap_mops
            );
            rows.push(row);
        }
    }
    if let Some(path) = out {
        let snapshot = format!(
            "{{\"bench\":\"queue\",\"ops\":{ops},\"quick\":{quick},\"rows\":{}}}\n",
            list(&rows, Row::json)
        );
        std::fs::write(&path, snapshot).expect("write snapshot");
        println!("snapshot written to {path}");
    }
}
