//! Multi-client discrete-event simulation benchmark: cost of the shared
//! FIFO channel as the client population grows, per registry policy —
//! each cell one facade `SessionBuilder` line.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use speculative_prefetch::{Backend, Engine, MarkovChain, Workload};
use std::hint::black_box;

const REQUESTS: u64 = 300;
const N: usize = 50;

fn bench_population_scaling(c: &mut Criterion) {
    let chain = MarkovChain::random(N, 4, 8, 3, 8, 3).expect("valid chain");
    let retrievals: Vec<f64> = (0..N).map(|i| 1.0 + (i % 30) as f64).collect();
    let workload = Workload::multi_client(chain, REQUESTS, 3);

    let mut g = c.benchmark_group("multiclient");
    g.sample_size(10);
    for clients in [1usize, 4, 16] {
        g.throughput(Throughput::Elements(REQUESTS * clients as u64));
        for spec in ["no-prefetch", "skp-exact"] {
            let mut engine = Engine::builder()
                .policy(spec)
                .backend(Backend::MultiClient { clients })
                .catalog(retrievals.clone())
                .build()
                .expect("valid session");
            g.bench_function(BenchmarkId::new(spec, clients), |b| {
                b.iter(|| black_box(engine.run(&workload).expect("runs")))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_population_scaling);
criterion_main!(benches);
