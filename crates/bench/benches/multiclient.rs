//! Multi-client discrete-event simulation benchmark: cost of the shared
//! FIFO channel as the client population grows, per policy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use distsys::multiclient::access_shim::{Chain, MarkovLike};
use distsys::multiclient::MultiClientSim;
use rand::rngs::SmallRng;
use rand::Rng;
use std::hint::black_box;

const REQUESTS: u64 = 300;

struct Ring {
    n: usize,
}
impl MarkovLike for Ring {
    fn viewing(&self, state: usize) -> f64 {
        3.0 + (state % 5) as f64
    }
    fn next_state(&self, state: usize, rng: &mut SmallRng) -> usize {
        // Mostly the next item, sometimes a jump: cheap but non-trivial.
        if rng.random_range(0..10) < 8 {
            (state + 1) % self.n
        } else {
            rng.random_range(0..self.n)
        }
    }
    fn n_states(&self) -> usize {
        self.n
    }
}

fn bench_population_scaling(c: &mut Criterion) {
    let ring = Ring { n: 50 };
    let chain = Chain(&ring);
    let retrievals: Vec<f64> = (0..50).map(|i| 1.0 + (i % 30) as f64).collect();

    let mut g = c.benchmark_group("multiclient");
    g.sample_size(10);
    for clients in [1usize, 4, 16] {
        g.throughput(Throughput::Elements(REQUESTS * clients as u64));
        let sim = MultiClientSim {
            workload: &chain,
            retrievals: &retrievals,
            clients,
            requests_per_client: REQUESTS,
            seed: 3,
        };
        g.bench_function(BenchmarkId::new("next_item_prefetch", clients), |b| {
            b.iter(|| {
                let mut policy = |_c: usize, s: usize| vec![(s + 1) % 50];
                black_box(sim.run(&mut policy))
            })
        });
        g.bench_function(BenchmarkId::new("no_prefetch", clients), |b| {
            b.iter(|| {
                let mut policy = |_c: usize, _s: usize| Vec::new();
                black_box(sim.run(&mut policy))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_population_scaling);
criterion_main!(benches);
