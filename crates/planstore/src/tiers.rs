//! The in-memory store tiers: the null store, the per-thread hot
//! cache, the sharded lock-striped store, and the tiered composition.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::{PlanSet, PlanStore, PlanStoreStats, TierStats};

/// An MRU-ordered lane of entries: front is most recently used, the
/// tail is the eviction victim.
type LruLane = Vec<(u64, Arc<PlanSet>)>;

/// Looks up `key` in an MRU-front lane, moving it to the front on hit.
fn lane_get(lane: &mut LruLane, key: u64) -> Option<Arc<PlanSet>> {
    let pos = lane.iter().position(|(k, _)| *k == key)?;
    let entry = lane.remove(pos);
    let value = entry.1.clone();
    lane.insert(0, entry);
    Some(value)
}

/// Inserts or refreshes `key` at the front of an MRU-front lane and
/// returns whether the put grew the lane (false when it replaced an
/// existing entry).
fn lane_put(lane: &mut LruLane, key: u64, value: Arc<PlanSet>) -> bool {
    let grew = match lane.iter().position(|(k, _)| *k == key) {
        Some(pos) => {
            lane.remove(pos);
            false
        }
        None => true,
    };
    lane.insert(0, (key, value));
    grew
}

// ---------------------------------------------------------------------
// none
// ---------------------------------------------------------------------

/// The null store: never hits, never retains, counts nothing. The
/// explicit way to opt a session out of plan reuse entirely.
#[derive(Debug, Default)]
pub struct NoneStore;

impl PlanStore for NoneStore {
    fn name(&self) -> &'static str {
        "none"
    }

    fn spec_string(&self) -> String {
        "none".to_string()
    }

    fn get(&self, _key: u64) -> Option<Arc<PlanSet>> {
        None
    }

    fn put(&self, _key: u64, _value: Arc<PlanSet>) {}

    fn stats(&self) -> PlanStoreStats {
        PlanStoreStats::from_tier(TierStats {
            tier: "none".to_string(),
            ..TierStats::default()
        })
    }
}

// ---------------------------------------------------------------------
// hot:<cap>
// ---------------------------------------------------------------------

/// Distinguishes the per-thread lanes of distinct `HotStore` instances
/// sharing one thread-local map.
static NEXT_HOT_ID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Per-thread LRU lanes, keyed by `HotStore` instance id. Living in
    /// a thread-local means `get`/`put` never synchronise — the tier is
    /// meant as the first link of a `tiered:` chain, absorbing repeat
    /// lookups before they reach a locked tier.
    static HOT_LANES: RefCell<HashMap<u64, LruLane>> = RefCell::new(HashMap::new());
}

/// Per-thread unsynchronized LRU (`hot:<cap>`). Each thread sees its
/// own lane (capacity `cap` per thread); the counters are aggregated
/// across threads with relaxed atomics, so `entries` reports the sum
/// of all lanes.
#[derive(Debug)]
pub struct HotStore {
    id: u64,
    cap: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    entries: AtomicU64,
}

impl HotStore {
    /// A hot store holding up to `cap` entries per thread.
    pub fn new(cap: usize) -> Self {
        HotStore {
            id: NEXT_HOT_ID.fetch_add(1, Ordering::Relaxed),
            cap: cap.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            entries: AtomicU64::new(0),
        }
    }
}

impl PlanStore for HotStore {
    fn name(&self) -> &'static str {
        "hot"
    }

    fn spec_string(&self) -> String {
        format!("hot:{}", self.cap)
    }

    fn get(&self, key: u64) -> Option<Arc<PlanSet>> {
        let found = HOT_LANES.with(|lanes| {
            let mut lanes = lanes.borrow_mut();
            lane_get(lanes.entry(self.id).or_default(), key)
        });
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    fn put(&self, key: u64, value: Arc<PlanSet>) {
        HOT_LANES.with(|lanes| {
            let mut lanes = lanes.borrow_mut();
            let lane = lanes.entry(self.id).or_default();
            if lane_put(lane, key, value) {
                if lane.len() > self.cap {
                    lane.pop();
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                } else {
                    self.entries.fetch_add(1, Ordering::Relaxed);
                }
            }
        });
    }

    fn stats(&self) -> PlanStoreStats {
        PlanStoreStats::from_tier(TierStats {
            tier: self.spec_string(),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            promotions: 0,
            entries: self.entries.load(Ordering::Relaxed),
        })
    }
}

// ---------------------------------------------------------------------
// memory:<shards>x<cap>
// ---------------------------------------------------------------------

/// One lock stripe of a [`MemoryStore`].
#[derive(Debug, Default)]
struct MemoryShard {
    lane: Mutex<LruLane>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

/// Sharded, lock-striped LRU (`memory:<shards>x<cap>`): keys stripe
/// across `shards` independent mutexes, each guarding an LRU lane of
/// up to `cap` entries, so concurrent engines contend only when their
/// keys collide on a stripe.
#[derive(Debug)]
pub struct MemoryStore {
    shards: Vec<MemoryShard>,
    cap: usize,
}

impl MemoryStore {
    /// A store of `shards` stripes holding up to `cap` entries each.
    pub fn new(shards: usize, cap: usize) -> Self {
        MemoryStore {
            shards: (0..shards.max(1)).map(|_| MemoryShard::default()).collect(),
            cap: cap.max(1),
        }
    }

    fn shard(&self, key: u64) -> &MemoryShard {
        &self.shards[(key % self.shards.len() as u64) as usize]
    }
}

impl PlanStore for MemoryStore {
    fn name(&self) -> &'static str {
        "memory"
    }

    fn spec_string(&self) -> String {
        format!("memory:{}x{}", self.shards.len(), self.cap)
    }

    fn get(&self, key: u64) -> Option<Arc<PlanSet>> {
        let shard = self.shard(key);
        let found = lane_get(
            &mut shard.lane.lock().expect("plan store shard poisoned"),
            key,
        );
        match &found {
            Some(_) => shard.hits.fetch_add(1, Ordering::Relaxed),
            None => shard.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    fn put(&self, key: u64, value: Arc<PlanSet>) {
        let shard = self.shard(key);
        let mut lane = shard.lane.lock().expect("plan store shard poisoned");
        if lane_put(&mut lane, key, value) && lane.len() > self.cap {
            lane.pop();
            shard.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn stats(&self) -> PlanStoreStats {
        let mut row = TierStats {
            tier: self.spec_string(),
            ..TierStats::default()
        };
        for shard in &self.shards {
            row.hits += shard.hits.load(Ordering::Relaxed);
            row.misses += shard.misses.load(Ordering::Relaxed);
            row.evictions += shard.evictions.load(Ordering::Relaxed);
            row.entries += shard.lane.lock().expect("plan store shard poisoned").len() as u64;
        }
        PlanStoreStats::from_tier(row)
    }
}

// ---------------------------------------------------------------------
// tiered:<spec>,<spec>,…
// ---------------------------------------------------------------------

/// Read-through/write-back chain (`tiered:<spec>,…`): `get` probes the
/// tiers in order and, on a hit in a lower tier, promotes the value
/// into every tier above it; `put` writes all tiers. Stats report one
/// row per sub-tier (in chain order) with the chain's promotion counts
/// folded into each row.
pub struct TieredStore {
    tiers: Vec<Arc<dyn PlanStore>>,
    promotions: Vec<AtomicU64>,
    lookups: AtomicU64,
    hits: AtomicU64,
}

impl TieredStore {
    /// Chains `tiers` from hottest (probed first) to coldest.
    pub fn new(tiers: Vec<Arc<dyn PlanStore>>) -> Self {
        let promotions = tiers.iter().map(|_| AtomicU64::new(0)).collect();
        TieredStore {
            tiers,
            promotions,
            lookups: AtomicU64::new(0),
            hits: AtomicU64::new(0),
        }
    }
}

impl PlanStore for TieredStore {
    fn name(&self) -> &'static str {
        "tiered"
    }

    fn spec_string(&self) -> String {
        let specs: Vec<String> = self.tiers.iter().map(|t| t.spec_string()).collect();
        format!("tiered:{}", specs.join(","))
    }

    fn get(&self, key: u64) -> Option<Arc<PlanSet>> {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        for (depth, tier) in self.tiers.iter().enumerate() {
            if let Some(value) = tier.get(key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                for above in 0..depth {
                    self.tiers[above].put(key, value.clone());
                    self.promotions[above].fetch_add(1, Ordering::Relaxed);
                }
                return Some(value);
            }
        }
        None
    }

    fn put(&self, key: u64, value: Arc<PlanSet>) {
        for tier in &self.tiers {
            tier.put(key, value.clone());
        }
    }

    fn stats(&self) -> PlanStoreStats {
        let mut rows = Vec::with_capacity(self.tiers.len());
        for (i, tier) in self.tiers.iter().enumerate() {
            let mut sub = tier.stats();
            if let Some(first) = sub.tiers.first_mut() {
                first.promotions += self.promotions[i].load(Ordering::Relaxed);
            }
            rows.extend(sub.tiers);
        }
        PlanStoreStats {
            lookups: self.lookups.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            tiers: rows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::sample_set;

    #[test]
    fn none_store_never_retains() {
        let store = NoneStore;
        store.put(1, sample_set(1));
        assert!(store.get(1).is_none());
        let stats = store.stats();
        assert_eq!(stats.tiers.len(), 1);
        assert_eq!(stats.tiers[0].tier, "none");
        assert_eq!(stats.tiers[0].entries, 0);
    }

    #[test]
    fn lru_evicts_in_recency_order_under_capacity_one() {
        let store = MemoryStore::new(1, 1);
        store.put(1, sample_set(1));
        store.put(2, sample_set(2));
        // Capacity 1: the second put evicts the first.
        assert!(store.get(1).is_none());
        assert!(store.get(2).is_some());
        let stats = store.stats();
        assert_eq!(stats.tiers[0].evictions, 1);
        assert_eq!(stats.tiers[0].entries, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses(), 1);
    }

    #[test]
    fn lru_get_refreshes_recency() {
        let store = MemoryStore::new(1, 2);
        store.put(1, sample_set(1));
        store.put(2, sample_set(2));
        // Touch 1 so 2 becomes the LRU victim.
        assert!(store.get(1).is_some());
        store.put(3, sample_set(3));
        assert!(store.get(2).is_none(), "2 was least recently used");
        assert!(store.get(1).is_some());
        assert!(store.get(3).is_some());
    }

    #[test]
    fn put_of_an_existing_key_replaces_without_eviction() {
        let store = MemoryStore::new(1, 1);
        store.put(1, sample_set(1));
        store.put(1, sample_set(9));
        let stats = store.stats();
        assert_eq!(stats.tiers[0].evictions, 0);
        assert_eq!(stats.tiers[0].entries, 1);
        assert_eq!(store.get(1).unwrap().guard.policy_spec, "skp-exact#9");
    }

    #[test]
    fn memory_store_stripes_keys_across_shards() {
        let store = MemoryStore::new(2, 1);
        // Keys 0 and 1 land on different stripes: both survive cap 1.
        store.put(0, sample_set(0));
        store.put(1, sample_set(1));
        assert!(store.get(0).is_some());
        assert!(store.get(1).is_some());
        assert_eq!(store.stats().tiers[0].entries, 2);
        assert_eq!(store.spec_string(), "memory:2x1");
    }

    #[test]
    fn hot_store_is_an_lru_too() {
        let store = HotStore::new(1);
        store.put(1, sample_set(1));
        store.put(2, sample_set(2));
        assert!(store.get(1).is_none());
        assert!(store.get(2).is_some());
        let stats = store.stats();
        assert_eq!(stats.tiers[0].evictions, 1);
        assert_eq!(stats.tiers[0].entries, 1);
    }

    #[test]
    fn hot_store_instances_do_not_share_lanes() {
        let a = HotStore::new(4);
        let b = HotStore::new(4);
        a.put(1, sample_set(1));
        assert!(b.get(1).is_none(), "instance b must not see a's entries");
        assert!(a.get(1).is_some());
    }

    #[test]
    fn hot_store_lanes_are_per_thread() {
        let store = Arc::new(HotStore::new(4));
        store.put(1, sample_set(1));
        let remote = {
            let store = store.clone();
            std::thread::spawn(move || store.get(1).is_none())
                .join()
                .expect("thread runs")
        };
        assert!(remote, "another thread has its own empty lane");
        assert!(store.get(1).is_some(), "this thread's lane is intact");
    }

    #[test]
    fn tiered_promotes_on_lower_tier_hit() {
        let upper: Arc<dyn PlanStore> = Arc::new(MemoryStore::new(1, 4));
        let lower: Arc<dyn PlanStore> = Arc::new(MemoryStore::new(1, 4));
        lower.put(7, sample_set(7));
        let chain = TieredStore::new(vec![upper.clone(), lower]);
        assert!(chain.get(7).is_some(), "read-through finds the lower tier");
        // The hit promoted the value into the upper tier.
        assert!(upper.get(7).is_some());
        let stats = chain.stats();
        assert_eq!(stats.lookups, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.tiers.len(), 2);
        assert_eq!(stats.tiers[0].promotions, 1);
        assert_eq!(stats.tiers[1].promotions, 0);
        assert_eq!(stats.tiers[1].hits, 1);
    }

    #[test]
    fn tiered_put_writes_back_to_every_tier() {
        let upper: Arc<dyn PlanStore> = Arc::new(MemoryStore::new(1, 4));
        let lower: Arc<dyn PlanStore> = Arc::new(MemoryStore::new(1, 4));
        let chain = TieredStore::new(vec![upper.clone(), lower.clone()]);
        chain.put(3, sample_set(3));
        assert!(upper.get(3).is_some());
        assert!(lower.get(3).is_some());
        assert_eq!(chain.spec_string(), "tiered:memory:1x4,memory:1x4");
    }

    #[test]
    fn tiered_miss_counts_a_lookup_without_a_hit() {
        let chain = TieredStore::new(vec![Arc::new(MemoryStore::new(1, 2)) as Arc<dyn PlanStore>]);
        assert!(chain.get(5).is_none());
        let stats = chain.stats();
        assert_eq!(stats.lookups, 1);
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.misses(), 1);
    }
}
