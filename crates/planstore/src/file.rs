//! The persistent `file:<dir>` tier: one text file per content key,
//! written atomically (temp + rename), parsed strictly — anything
//! short of a perfect round-trip is a miss, never a wrong plan.
//!
//! The codec renders `f64`s with Rust's shortest-round-trip `Display`
//! (the same guarantee the facade's wire module relies on), so a
//! catalog survives a save/load cycle bit-exactly and the
//! [`PlanGuard`] check still holds after a process restart.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::{PlanGuard, PlanSet, PlanStore, PlanStoreStats, TierStats};

/// Leading line of every stored file; bumping it invalidates (as
/// misses) every entry written by an incompatible codec.
const MAGIC: &str = "skp-planstore v1";

/// Persistent one-file-per-key store (`file:<dir>`). The directory is
/// created on first write; reads of missing, truncated or foreign
/// files are misses. Writes go through a temp file and an atomic
/// rename, so concurrent readers never observe a half-written entry.
#[derive(Debug)]
pub struct FileStore {
    dir: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl FileStore {
    /// A store rooted at `dir` (created lazily on the first put).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        FileStore {
            dir: dir.into(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The directory entries live in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn entry_path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.plan"))
    }
}

impl PlanStore for FileStore {
    fn name(&self) -> &'static str {
        "file"
    }

    fn spec_string(&self) -> String {
        format!("file:{}", self.dir.display())
    }

    fn get(&self, key: u64) -> Option<Arc<PlanSet>> {
        let found = std::fs::read_to_string(self.entry_path(key))
            .ok()
            .and_then(|text| parse_plan_set(&text));
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found.map(Arc::new)
    }

    fn put(&self, key: u64, value: Arc<PlanSet>) {
        // Best-effort persistence: a full disk or a permission error
        // costs the entry, not the run.
        if std::fs::create_dir_all(&self.dir).is_err() {
            return;
        }
        let tmp = self
            .dir
            .join(format!(".{key:016x}.tmp{}", std::process::id()));
        if std::fs::write(&tmp, render_plan_set(&value)).is_ok()
            && std::fs::rename(&tmp, self.entry_path(key)).is_err()
        {
            let _ = std::fs::remove_file(&tmp);
        }
    }

    fn stats(&self) -> PlanStoreStats {
        let entries = std::fs::read_dir(&self.dir)
            .map(|dir| {
                dir.filter_map(|e| e.ok())
                    .filter(|e| e.path().extension().is_some_and(|ext| ext == "plan"))
                    .count() as u64
            })
            .unwrap_or(0);
        PlanStoreStats::from_tier(TierStats {
            tier: self.spec_string(),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: 0,
            promotions: 0,
            entries,
        })
    }
}

/// Renders a plan set as the on-disk text form:
///
/// ```text
/// skp-planstore v1
/// policy <spec>
/// catalog <f64> <f64> …
/// states <n>
/// plan <state> <item> <item> …
/// end
/// ```
///
/// Only solved states get a `plan` line; the `end` marker makes
/// truncation detectable.
pub(crate) fn render_plan_set(set: &PlanSet) -> String {
    let mut out = String::new();
    out.push_str(MAGIC);
    out.push('\n');
    out.push_str("policy ");
    out.push_str(&set.guard.policy_spec);
    out.push('\n');
    out.push_str("catalog");
    for &r in &set.guard.catalog {
        // `{}` on an f64 is the shortest string that parses back to
        // the same bits — the bit-exactness contract of the tier.
        out.push_str(&format!(" {r}"));
    }
    out.push('\n');
    out.push_str(&format!("states {}\n", set.plans.len()));
    for (state, plan) in set.plans.iter().enumerate() {
        if let Some(items) = plan {
            out.push_str(&format!("plan {state}"));
            for &item in items {
                out.push_str(&format!(" {item}"));
            }
            out.push('\n');
        }
    }
    out.push_str("end\n");
    out
}

/// Strict inverse of [`render_plan_set`]: any deviation — wrong magic,
/// missing section, unparsable number, out-of-range state, missing
/// `end` — yields `None` (a miss).
pub(crate) fn parse_plan_set(text: &str) -> Option<PlanSet> {
    let mut lines = text.lines();
    if lines.next()? != MAGIC {
        return None;
    }
    let policy_spec = lines.next()?.strip_prefix("policy ")?.to_string();
    let catalog_line = lines.next()?.strip_prefix("catalog")?;
    let mut catalog = Vec::new();
    for tok in catalog_line.split_whitespace() {
        catalog.push(tok.parse::<f64>().ok()?);
    }
    let n: usize = lines.next()?.strip_prefix("states ")?.parse().ok()?;
    let mut plans: Vec<Option<Vec<usize>>> = vec![None; n];
    let mut ended = false;
    for line in lines {
        if ended {
            return None; // trailing garbage after `end`
        }
        if line == "end" {
            ended = true;
            continue;
        }
        let mut toks = line.strip_prefix("plan ")?.split_whitespace();
        let state: usize = toks.next()?.parse().ok()?;
        if state >= n || plans[state].is_some() {
            return None;
        }
        let mut items = Vec::new();
        for tok in toks {
            items.push(tok.parse::<usize>().ok()?);
        }
        plans[state] = Some(items);
    }
    if !ended {
        return None;
    }
    Some(PlanSet {
        plans,
        guard: PlanGuard {
            policy_spec,
            catalog,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("skp-planstore-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn awkward_set() -> PlanSet {
        PlanSet {
            plans: vec![Some(vec![0, 2, 5]), None, Some(vec![]), Some(vec![7])],
            guard: PlanGuard {
                policy_spec: "network-aware:0.4".into(),
                // Values whose decimal forms stress shortest-round-trip:
                // non-terminating binary fractions, subnormals, extremes.
                catalog: vec![
                    0.1 + 0.2,
                    1.0 / 3.0,
                    f64::MIN_POSITIVE,
                    5e-324,
                    1.7976931348623157e308,
                    -0.0,
                    12345.678901234567,
                ],
            },
        }
    }

    #[test]
    fn codec_round_trips_f64s_bit_exactly() {
        let set = awkward_set();
        let back = parse_plan_set(&render_plan_set(&set)).expect("parses");
        assert_eq!(back.plans, set.plans);
        assert_eq!(back.guard.policy_spec, set.guard.policy_spec);
        for (a, b) in back.guard.catalog.iter().zip(&set.guard.catalog) {
            assert_eq!(a.to_bits(), b.to_bits(), "{a} lost bits against {b}");
        }
    }

    #[test]
    fn codec_rejects_every_truncation() {
        let full = render_plan_set(&awkward_set());
        // Dropping any suffix must fail the parse, never mis-parse.
        // (Only the final newline is optional: a complete `end` line
        // still marks a complete entry.)
        for cut in 0..full.len() - 1 {
            assert!(
                parse_plan_set(&full[..cut]).is_none(),
                "truncation at {cut} parsed"
            );
        }
        assert!(parse_plan_set(&format!("{full}junk\n")).is_none());
        assert!(parse_plan_set(&full.replace("v1", "v0")).is_none());
        assert!(parse_plan_set(&full.replace("plan 0", "plan 9")).is_none());
    }

    #[test]
    fn file_store_round_trips_through_disk() {
        let dir = scratch("roundtrip");
        let store = FileStore::new(&dir);
        assert!(store.get(42).is_none(), "empty store misses");
        let set = Arc::new(awkward_set());
        store.put(42, set.clone());
        // A fresh store instance over the same directory — the
        // process-restart shape — sees the entry bit-exactly.
        let reopened = FileStore::new(&dir);
        let back = reopened.get(42).expect("persisted entry");
        assert_eq!(*back, *set);
        assert!(back.matches("network-aware:0.4", &set.guard.catalog));
        let stats = reopened.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.tiers[0].entries, 1);
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn corrupt_entries_degrade_to_misses() {
        let dir = scratch("corrupt");
        let store = FileStore::new(&dir);
        store.put(7, Arc::new(awkward_set()));
        let path = dir.join(format!("{:016x}.plan", 7u64));
        std::fs::write(&path, "skp-planstore v1\npolicy x\n").expect("writes");
        assert!(store.get(7).is_none(), "corrupt file must miss");
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn temp_files_are_not_counted_as_entries() {
        let dir = scratch("tmpcount");
        let store = FileStore::new(&dir);
        store.put(1, Arc::new(awkward_set()));
        std::fs::write(dir.join(".deadbeef.tmp999"), "half").expect("writes");
        assert_eq!(store.stats().tiers[0].entries, 1);
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}
