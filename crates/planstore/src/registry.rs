//! The string-keyed plan-store registry: spec strings to store
//! instances, mirroring the facade's backend registry — builtin tiers
//! plus runtime registration, with hardened per-shape parse errors.

use std::sync::{Arc, LazyLock, RwLock};

use crate::file::FileStore;
use crate::tiers::{HotStore, MemoryStore, NoneStore, TieredStore};
use crate::{PlanStore, StoreError};

/// Default per-thread capacity of a bare `hot` spec.
const HOT_DEFAULT_CAP: usize = 256;
/// Default topology of a bare `memory` spec.
const MEMORY_DEFAULT_SHARDS: usize = 8;
const MEMORY_DEFAULT_CAP: usize = 1024;

/// Describes one registered plan-store kind for listings (`skp-plan
/// --list`, `GET /registry`).
#[derive(Debug, Clone, Copy)]
pub struct PlanStoreSpec {
    /// Registry name (the spec string up to the first `:`).
    pub name: &'static str,
    /// Human-readable parameter syntax (empty when the store takes
    /// none).
    pub params: &'static str,
    /// One-line description for listings.
    pub summary: &'static str,
}

/// Builds a store from the spec's parameter part (the text after the
/// first `:`, absent for a bare name).
pub type PlanStoreBuilder = fn(Option<&str>) -> Result<Arc<dyn PlanStore>, StoreError>;

struct StoreEntry {
    spec: PlanStoreSpec,
    build: PlanStoreBuilder,
}

fn param_err(what: &'static str, detail: String) -> StoreError {
    StoreError {
        what,
        detail: format!("{detail} (see `skp-plan --list` for the syntax)"),
    }
}

/// Parses a strictly positive integer field, with the same error
/// shapes as the backend registry's spec hardening.
fn parse_positive(what: &'static str, field: &'static str, raw: &str) -> Result<usize, StoreError> {
    match raw.parse::<usize>() {
        Ok(0) => Err(param_err(
            what,
            format!("{field} must be at least 1, got '0'"),
        )),
        Ok(n) => Ok(n),
        Err(_) => Err(param_err(
            what,
            format!("{field} '{raw}' is not a positive integer"),
        )),
    }
}

/// Parses a `<shards>x<cap>` topology.
fn parse_topology(what: &'static str, raw: &str) -> Result<(usize, usize), StoreError> {
    let (shards, cap) = raw.split_once('x').ok_or_else(|| {
        param_err(
            what,
            format!("topology '{raw}' must be '<shards>x<cap>' (e.g. 8x1024)"),
        )
    })?;
    Ok((
        parse_positive(what, "shards", shards)?,
        parse_positive(what, "cap", cap)?,
    ))
}

/// Rejects leftover `:`-separated parts after the expected ones.
fn reject_trailing<'a>(
    what: &'static str,
    after: &'static str,
    mut parts: impl Iterator<Item = &'a str>,
) -> Result<(), StoreError> {
    match parts.next() {
        None => Ok(()),
        Some(junk) => Err(param_err(
            what,
            format!("trailing ':{junk}' after the {after}"),
        )),
    }
}

fn build_none(param: Option<&str>) -> Result<Arc<dyn PlanStore>, StoreError> {
    match param {
        None => Ok(Arc::new(NoneStore)),
        Some(raw) => Err(param_err(
            "none plan-store spec",
            format!("takes no parameters, got ':{raw}'"),
        )),
    }
}

fn build_hot(param: Option<&str>) -> Result<Arc<dyn PlanStore>, StoreError> {
    const WHAT: &str = "hot plan-store spec";
    let cap = match param {
        None => HOT_DEFAULT_CAP,
        Some(raw) => {
            let mut parts = raw.split(':');
            let cap = parse_positive(WHAT, "cap", parts.next().unwrap_or_default())?;
            reject_trailing(WHAT, "capacity", parts)?;
            cap
        }
    };
    Ok(Arc::new(HotStore::new(cap)))
}

fn build_memory(param: Option<&str>) -> Result<Arc<dyn PlanStore>, StoreError> {
    const WHAT: &str = "memory plan-store spec";
    let (shards, cap) = match param {
        None => (MEMORY_DEFAULT_SHARDS, MEMORY_DEFAULT_CAP),
        Some(raw) => {
            let mut parts = raw.split(':');
            let topology = parse_topology(WHAT, parts.next().unwrap_or_default())?;
            reject_trailing(WHAT, "topology", parts)?;
            topology
        }
    };
    Ok(Arc::new(MemoryStore::new(shards, cap)))
}

fn build_file(param: Option<&str>) -> Result<Arc<dyn PlanStore>, StoreError> {
    const WHAT: &str = "file plan-store spec";
    // The whole parameter is the directory (paths may contain ':'), so
    // there is no trailing-junk check to apply here.
    match param.map(str::trim) {
        None | Some("") => Err(param_err(
            WHAT,
            "needs a directory, e.g. 'file:.skp-plans'".to_string(),
        )),
        Some(dir) => Ok(Arc::new(FileStore::new(dir))),
    }
}

fn build_tiered(param: Option<&str>) -> Result<Arc<dyn PlanStore>, StoreError> {
    const WHAT: &str = "tiered plan-store spec";
    let raw = match param.map(str::trim) {
        None | Some("") => {
            return Err(param_err(
                WHAT,
                "needs a comma-separated tier chain, e.g. 'tiered:hot:256,memory:8x1024'"
                    .to_string(),
            ))
        }
        Some(raw) => raw,
    };
    let mut tiers = Vec::new();
    for spec in raw.split(',') {
        let spec = spec.trim();
        if spec.is_empty() {
            return Err(param_err(WHAT, format!("empty tier in the chain '{raw}'")));
        }
        let name = spec.split(':').next().unwrap_or_default();
        if name == "tiered" {
            return Err(param_err(
                WHAT,
                "tiers cannot nest: flatten the chain instead".to_string(),
            ));
        }
        tiers.push(build_plan_store(spec)?);
    }
    Ok(Arc::new(TieredStore::new(tiers)))
}

fn builtin_entries() -> Vec<StoreEntry> {
    vec![
        StoreEntry {
            spec: PlanStoreSpec {
                name: "none",
                params: "",
                summary: "null store: never hits, never retains (opts a session out of plan reuse)",
            },
            build: build_none,
        },
        StoreEntry {
            spec: PlanStoreSpec {
                name: "hot",
                params: ":cap",
                summary:
                    "per-thread unsynchronized LRU (default cap 256); no locks on the hot path",
            },
            build: build_hot,
        },
        StoreEntry {
            spec: PlanStoreSpec {
                name: "memory",
                params: ":SxC",
                summary: "sharded lock-striped LRU, S stripes of C entries (default 8x1024)",
            },
            build: build_memory,
        },
        StoreEntry {
            spec: PlanStoreSpec {
                name: "file",
                params: ":dir",
                summary: "persistent one-file-per-key store; plans survive restarts bit-exactly",
            },
            build: build_file,
        },
        StoreEntry {
            spec: PlanStoreSpec {
                name: "tiered",
                params: ":spec,spec,..",
                summary: "read-through/write-back chain with promotion on hit (hottest first)",
            },
            build: build_tiered,
        },
    ]
}

static REGISTRY: LazyLock<RwLock<Vec<StoreEntry>>> =
    LazyLock::new(|| RwLock::new(builtin_entries()));

/// Registers a plan-store kind under a new name, making it reachable
/// from every spec-string surface (`SessionBuilder::plan_store`, the
/// `plan-store` workload directive, `skp-plan run --plan-store`,
/// `skp-serve --plan-store`). Errors if the name is taken.
pub fn register_plan_store(
    name: &'static str,
    params: &'static str,
    summary: &'static str,
    build: PlanStoreBuilder,
) -> Result<(), StoreError> {
    let mut reg = REGISTRY.write().expect("plan store registry poisoned");
    if reg.iter().any(|e| e.spec.name == name) {
        return Err(StoreError {
            what: "plan store registration",
            detail: format!("the name '{name}' is already registered"),
        });
    }
    reg.push(StoreEntry {
        spec: PlanStoreSpec {
            name,
            params,
            summary,
        },
        build,
    });
    Ok(())
}

/// The registered plan-store kinds, in registration order.
pub fn plan_store_specs() -> Vec<PlanStoreSpec> {
    REGISTRY
        .read()
        .expect("plan store registry poisoned")
        .iter()
        .map(|e| e.spec)
        .collect()
}

/// The registered plan-store names, in registration order.
pub fn plan_store_names() -> Vec<&'static str> {
    REGISTRY
        .read()
        .expect("plan store registry poisoned")
        .iter()
        .map(|e| e.spec.name)
        .collect()
}

/// Builds a store from a spec string (`name` or `name:params`) through
/// the registry.
pub fn build_plan_store(spec: &str) -> Result<Arc<dyn PlanStore>, StoreError> {
    let (name, param) = match spec.split_once(':') {
        Some((name, param)) => (name, Some(param)),
        None => (spec, None),
    };
    let build = {
        let reg = REGISTRY.read().expect("plan store registry poisoned");
        reg.iter().find(|e| e.spec.name == name).map(|e| e.build)
    };
    match build {
        Some(build) => build(param),
        None => Err(StoreError {
            what: "plan store spec",
            detail: format!(
                "unknown plan store '{name}' (known: {})",
                plan_store_names().join(", ")
            ),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn err(spec: &str) -> String {
        build_plan_store(spec).err().expect("must fail").to_string()
    }

    #[test]
    fn builtin_specs_build_and_round_trip() {
        for (spec, canonical) in [
            ("none", "none"),
            ("hot", "hot:256"),
            ("hot:32", "hot:32"),
            ("memory", "memory:8x1024"),
            ("memory:2x64", "memory:2x64"),
            ("file:/tmp/skp-plans", "file:/tmp/skp-plans"),
            ("tiered:hot:8,memory:2x64", "tiered:hot:8,memory:2x64"),
        ] {
            let store = build_plan_store(spec).expect(spec);
            assert_eq!(store.spec_string(), canonical, "spec {spec}");
            // The canonical string is a fixed point of the registry.
            let again = build_plan_store(&store.spec_string()).expect(canonical);
            assert_eq!(again.spec_string(), canonical);
        }
    }

    #[test]
    fn unknown_store_lists_the_known_names() {
        let msg = err("quantum:9");
        assert!(msg.contains("unknown plan store 'quantum'"), "{msg}");
        for name in ["none", "hot", "memory", "file", "tiered"] {
            assert!(msg.contains(name), "{msg} missing {name}");
        }
    }

    #[test]
    fn zero_capacities_are_rejected() {
        let msg = err("hot:0");
        assert!(msg.contains("cap must be at least 1, got '0'"), "{msg}");
        let msg = err("memory:0x5");
        assert!(msg.contains("shards must be at least 1, got '0'"), "{msg}");
        let msg = err("memory:4x0");
        assert!(msg.contains("cap must be at least 1, got '0'"), "{msg}");
    }

    #[test]
    fn non_numeric_fields_are_rejected() {
        let msg = err("hot:many");
        assert!(msg.contains("'many' is not a positive integer"), "{msg}");
        let msg = err("memory:8xbig");
        assert!(msg.contains("'big' is not a positive integer"), "{msg}");
    }

    #[test]
    fn malformed_topologies_are_rejected() {
        let msg = err("memory:8");
        assert!(msg.contains("must be '<shards>x<cap>'"), "{msg}");
        let msg = err("memory:");
        assert!(msg.contains("must be '<shards>x<cap>'"), "{msg}");
    }

    #[test]
    fn trailing_junk_is_rejected() {
        let msg = err("hot:8:junk");
        assert!(msg.contains("trailing ':junk' after the capacity"), "{msg}");
        let msg = err("memory:2x4:junk");
        assert!(msg.contains("trailing ':junk' after the topology"), "{msg}");
        let msg = err("none:x");
        assert!(msg.contains("takes no parameters, got ':x'"), "{msg}");
    }

    #[test]
    fn file_and_tiered_require_parameters() {
        assert!(err("file").contains("needs a directory"));
        assert!(err("file:").contains("needs a directory"));
        assert!(err("tiered").contains("needs a comma-separated tier chain"));
        assert!(err("tiered:").contains("needs a comma-separated tier chain"));
    }

    #[test]
    fn tiered_chains_reject_bad_links() {
        assert!(err("tiered:hot:8,,memory:2x4").contains("empty tier"));
        assert!(err("tiered:hot:8,tiered:memory:2x4").contains("cannot nest"));
        // Errors inside a link surface with the link's own shape.
        assert!(err("tiered:hot:0").contains("cap must be at least 1"));
        assert!(err("tiered:warp").contains("unknown plan store 'warp'"));
    }

    #[test]
    fn every_error_points_at_the_listing() {
        for spec in ["hot:0", "memory:3", "none:x", "file", "tiered:"] {
            assert!(
                err(spec).contains("see `skp-plan --list`"),
                "{spec} error lacks the listing pointer"
            );
        }
    }

    #[test]
    fn duplicate_registration_is_rejected() {
        let e = register_plan_store("memory", "", "dup", build_memory).expect_err("must fail");
        assert!(e.to_string().contains("already registered"));
        fn build_probe(_: Option<&str>) -> Result<Arc<dyn PlanStore>, StoreError> {
            Ok(Arc::new(NoneStore))
        }
        register_plan_store("probe-store", "", "test-only", build_probe).expect("fresh name");
        assert!(plan_store_names().contains(&"probe-store"));
        assert_eq!(build_plan_store("probe-store").unwrap().name(), "none");
    }
}
