//! Tiered plan store: cross-run, cross-client caching of solved
//! per-state prefetch plans behind a pluggable KV seam.
//!
//! A population run solves one prefetch plan per Markov state; the
//! registry policies are pure functions of the scenario, so the
//! `(policy spec, chain, catalog)` triple fully determines every plan.
//! [`population_plan_key`] folds that triple into a 64-bit FNV-1a
//! content key, and a [`PlanStore`] maps the key to the solved
//! [`PlanSet`] — across runs, across engines, and (with the `file:`
//! tier) across process restarts.
//!
//! Stores are built from string specs through a runtime-extensible
//! registry ([`build_plan_store`]), mirroring the facade's backend
//! registry:
//!
//! | spec | store |
//! |------|-------|
//! | `none` | the null store: never hits, never retains |
//! | `hot:<cap>` | per-thread unsynchronized LRU (no locks on the hot path) |
//! | `memory:<shards>x<cap>` | sharded, lock-striped LRU (cap per shard) |
//! | `file:<dir>` | persistent one-file-per-key store, bit-exact across restarts |
//! | `tiered:<spec>,<spec>,…` | read-through/write-back chain with promotion on hit |
//!
//! ```
//! use planstore::{build_plan_store, PlanGuard, PlanSet};
//! use std::sync::Arc;
//!
//! let store = build_plan_store("tiered:hot:8,memory:2x64")?;
//! let set = Arc::new(PlanSet {
//!     plans: vec![Some(vec![0, 2]), None],
//!     guard: PlanGuard { policy_spec: "skp-exact".into(), catalog: vec![3.0, 5.0] },
//! });
//! store.put(7, set.clone());
//! assert_eq!(store.get(7).as_deref(), Some(&*set));
//! assert_eq!(store.stats().hits, 1);
//! # Ok::<(), planstore::StoreError>(())
//! ```
//!
//! Because the key is a non-cryptographic 64-bit hash, stored values
//! carry a [`PlanGuard`] echo of the inputs they were solved from;
//! consumers verify the guard on every hit ([`PlanSet::matches`])
//! before trusting the entry, so a key collision or a corrupted file
//! degrades to a miss, never to a wrong plan.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod file;
mod registry;
mod tiers;

pub use file::FileStore;
pub use registry::{
    build_plan_store, plan_store_names, plan_store_specs, register_plan_store, PlanStoreBuilder,
    PlanStoreSpec,
};
pub use tiers::{HotStore, MemoryStore, NoneStore, TieredStore};

use std::fmt;
use std::sync::Arc;

use access_model::MarkovChain;

/// Echo of the inputs a [`PlanSet`] was solved from, stored alongside
/// the plans. [`population_plan_key`] is a non-cryptographic 64-bit
/// hash, so a hit is only trusted after the guard is re-checked
/// against the live inputs ([`PlanSet::matches`]): collisions and
/// on-disk corruption degrade to misses.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanGuard {
    /// Registry spec of the policy that solved the plans.
    pub policy_spec: String,
    /// The catalog slice the scenarios were built from (compared
    /// bit-for-bit, so the `file:` tier must round-trip `f64`s
    /// exactly).
    pub catalog: Vec<f64>,
}

/// One store value: the solved per-state plans of a population
/// (`None` for states never visited, so never solved) plus the
/// [`PlanGuard`] echo they are valid for.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanSet {
    /// Per-state plans, indexed by Markov state.
    pub plans: Vec<Option<Vec<usize>>>,
    /// Input echo verified on every hit.
    pub guard: PlanGuard,
}

impl PlanSet {
    /// Number of states with a solved plan.
    pub fn solved(&self) -> usize {
        self.plans.iter().filter(|p| p.is_some()).count()
    }

    /// Whether this set was solved from exactly these inputs: the
    /// guard's policy spec matches and the catalog is bit-identical.
    pub fn matches(&self, policy_spec: &str, catalog: &[f64]) -> bool {
        self.guard.policy_spec == policy_spec
            && self.guard.catalog.len() == catalog.len()
            && self
                .guard
                .catalog
                .iter()
                .zip(catalog)
                .all(|(a, b)| a.to_bits() == b.to_bits())
    }
}

/// Counters of one tier of a store. Every simple store reports exactly
/// one row; a [`TieredStore`] reports the concatenation of its
/// sub-tiers' rows with the chain's promotion counts folded in.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TierStats {
    /// The tier's canonical spec string (e.g. `memory:8x1024`).
    pub tier: String,
    /// Lookups answered by this tier.
    pub hits: u64,
    /// Lookups this tier could not answer.
    pub misses: u64,
    /// Entries evicted to respect the tier's capacity.
    pub evictions: u64,
    /// Values copied into this tier because a lower tier hit.
    pub promotions: u64,
    /// Values currently resident in the tier.
    pub entries: u64,
}

/// Store-wide counters: aggregate lookups/hits plus the per-tier
/// breakdown. Snapshot into every `RunReport`; cheap to clone.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PlanStoreStats {
    /// Total [`PlanStore::get`] calls.
    pub lookups: u64,
    /// Lookups answered by any tier.
    pub hits: u64,
    /// Per-tier counter rows.
    pub tiers: Vec<TierStats>,
}

impl PlanStoreStats {
    /// Lookups no tier could answer.
    pub fn misses(&self) -> u64 {
        self.lookups - self.hits
    }

    /// Fraction of lookups answered (`0.0` when there were none).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }

    /// Stats of a single-tier store: the aggregate view is the tier's
    /// own row.
    pub fn from_tier(tier: TierStats) -> Self {
        PlanStoreStats {
            lookups: tier.hits + tier.misses,
            hits: tier.hits,
            tiers: vec![tier],
        }
    }
}

/// A malformed plan-store spec or registration conflict. Converted by
/// the facade into its unified error type.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreError {
    /// Which spec family was malformed (e.g. `"hot plan-store spec"`).
    pub what: &'static str,
    /// Human-readable diagnosis of the malformation.
    pub detail: String,
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid {}: {}", self.what, self.detail)
    }
}

impl std::error::Error for StoreError {}

/// A key-value store of solved population plans, content-addressed by
/// [`population_plan_key`]. Implementations use interior mutability:
/// `get`/`put` take `&self` so one store can be shared across engines
/// and worker threads behind an `Arc`.
///
/// The contract mirrors a read-through cache, not a database: `put`
/// is best-effort (a full or failing tier may drop the value), `get`
/// must never fabricate — a corrupt or mismatched entry is a miss.
/// Values travel as `Arc<PlanSet>` so promotion between tiers never
/// copies the plans.
pub trait PlanStore: Send + Sync {
    /// The registry name of this store kind (e.g. `"memory"`).
    fn name(&self) -> &'static str;

    /// Canonical spec string (reparses to an equivalent store through
    /// [`build_plan_store`]).
    fn spec_string(&self) -> String;

    /// Looks up a plan set by content key.
    fn get(&self, key: u64) -> Option<Arc<PlanSet>>;

    /// Stores a plan set under a content key (best-effort).
    fn put(&self, key: u64, value: Arc<PlanSet>);

    /// Snapshot of the store's counters.
    fn stats(&self) -> PlanStoreStats;
}

/// FNV-1a over the population inputs that determine every per-state
/// plan: the policy spec, the chain's viewing times and transition
/// rows, and the catalog slice the scenarios are built from.
///
/// Custom policies installed as instances (rather than registry
/// specs) have no spec to key on and an unknowable purity, so they
/// bypass the store entirely — the caller simply has no key to offer.
pub fn population_plan_key(spec: &str, chain: &MarkovChain, retrievals: &[f64]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h = (h ^ b as u64).wrapping_mul(PRIME);
        }
    };
    eat(spec.as_bytes());
    let n = chain.n_states();
    eat(&(n as u64).to_le_bytes());
    for i in 0..n {
        eat(&chain.viewing(i).to_bits().to_le_bytes());
        for &(j, p) in chain.successors(i) {
            eat(&(j as u64).to_le_bytes());
            eat(&p.to_bits().to_le_bytes());
        }
    }
    for &r in &retrievals[..n.min(retrievals.len())] {
        eat(&r.to_bits().to_le_bytes());
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample_set(tag: u64) -> Arc<PlanSet> {
        Arc::new(PlanSet {
            plans: vec![Some(vec![tag as usize, 2]), None, Some(vec![])],
            guard: PlanGuard {
                policy_spec: format!("skp-exact#{tag}"),
                catalog: vec![3.5, 0.1 + 0.2, 1.0 / 3.0],
            },
        })
    }

    #[test]
    fn guard_matching_is_bitwise_on_the_catalog() {
        let set = sample_set(1);
        assert!(set.matches("skp-exact#1", &[3.5, 0.1 + 0.2, 1.0 / 3.0]));
        // 0.3 is not bit-identical to 0.1 + 0.2: the guard must notice.
        assert!(!set.matches("skp-exact#1", &[3.5, 0.3, 1.0 / 3.0]));
        assert!(!set.matches("skp-exact#2", &[3.5, 0.1 + 0.2, 1.0 / 3.0]));
        assert!(!set.matches("skp-exact#1", &[3.5, 0.1 + 0.2]));
        assert_eq!(set.solved(), 2);
    }

    #[test]
    fn stats_helpers_cover_the_empty_store() {
        let empty = PlanStoreStats::default();
        assert_eq!(empty.misses(), 0);
        assert_eq!(empty.hit_rate(), 0.0);
        let one = PlanStoreStats::from_tier(TierStats {
            tier: "memory:1x8".into(),
            hits: 3,
            misses: 1,
            ..TierStats::default()
        });
        assert_eq!(one.lookups, 4);
        assert_eq!(one.misses(), 1);
        assert!((one.hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn content_key_separates_every_input() {
        let chain = MarkovChain::random(6, 2, 4, 5, 20, 3).unwrap();
        let other = MarkovChain::random(6, 2, 4, 5, 20, 4).unwrap();
        let cat: Vec<f64> = (0..6).map(|i| 2.0 + i as f64).collect();
        let base = population_plan_key("skp-exact", &chain, &cat);
        assert_eq!(base, population_plan_key("skp-exact", &chain, &cat));
        assert_ne!(base, population_plan_key("greedy", &chain, &cat));
        assert_ne!(base, population_plan_key("skp-exact", &other, &cat));
        let mut bumped = cat.clone();
        bumped[5] += 1e-9;
        assert_ne!(base, population_plan_key("skp-exact", &chain, &bumped));
    }
}
